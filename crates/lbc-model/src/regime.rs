//! Execution regimes: how the simulated network schedules deliveries.
//!
//! The round loop of `lbc-sim` used to *be* the synchronous model — every
//! transmission of round `r` delivered to every receiver at round `r + 1`,
//! with no way to express anything else. A [`Regime`] makes the scheduling
//! discipline a first-class value threaded through the simulator (and the
//! campaign spec surface):
//!
//! * [`Regime::Synchronous`] — the classical lockstep rounds of the source
//!   paper (Khan–Naqvi–Vaidya, PODC 2019). Every message is delivered
//!   exactly one step after it is sent.
//! * [`Regime::Asynchronous`] — adversary-controlled but **eventually fair**
//!   delivery, the undirected asynchronous variant of the local broadcast
//!   line (arXiv:1909.02865): each transmission is delivered to each
//!   neighbor after a per-receiver lag of at most [`AsyncRegime::delay`]
//!   steps, chosen by a deterministic seeded [`SchedulerKind`]. Per-edge
//!   FIFO order is always preserved — a physical local-broadcast channel
//!   delivers a sender's transmissions to each neighbor in transmission
//!   order, even when different neighbors observe different lags, which is
//!   what keeps the flood fabric's same-first-message-per-key invariant
//!   intact across regimes.
//!
//! * [`Regime::PartialSync`] — the classical partial-synchrony model
//!   (Dwork–Lynch–Stockmeyer): before a Global Stabilization Time `gst`
//!   the adversary controls delivery through an [`AdversarialSchedule`]
//!   (transmissions of held senders are delayed arbitrarily-but-finitely
//!   and burst-released at GST), after `gst` delivery reverts to a seeded
//!   eventually-fair [`AsyncRegime`] with bound `D`. Per-edge FIFO order
//!   is still preserved — holds are per-*sender*, so a held edge releases
//!   its backlog in transmission order.
//!
//! The regime is part of a scenario's identity: campaign specs carry it as
//! an axis, reports record it per row, and `NodeContext` exposes it to
//! protocols (the asynchronous consensus algorithm reads the fairness bound
//! and the stabilization time from it to place its decision horizon).

use std::fmt;

use crate::json::{u64_from_number_or_string, FromJson, Json, JsonError, ToJson};

/// Hard cap on the eventual-fairness bound accepted from specs and CLI
/// JSON. Larger bounds add no new delivery *orders* — they only stretch
/// executions linearly — and an unbounded value would let a spec demand a
/// `delay + 1`-bucket schedule ring and an `O(n · delay)`-step run.
pub const MAX_DELAY: u32 = 4096;

/// Hard cap on the Global Stabilization Time accepted from specs and CLI
/// JSON, for the same reason as [`MAX_DELAY`]: a larger GST only stretches
/// executions linearly while every interesting timing attack already fits
/// well below it.
pub const MAX_GST: u32 = 4096;

/// The adversary-controlled pre-GST delivery schedule of a partial-synchrony
/// regime: a set of *held* senders whose transmissions sent before GST are
/// withheld and burst-released (in per-edge transmission order) at GST.
///
/// The hold-set is a bitmask over node ids, which keeps [`Regime`] `Copy`
/// and makes schedule identity a single-word comparison; nodes `>= 64` can
/// never be held (campaign search already restricts replayable schedule
/// fragments to `n <= 64` for the same reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AdversarialSchedule {
    /// Bit `i` set ⇔ node `i`'s pre-GST transmissions are held until GST.
    pub hold: u64,
}

impl AdversarialSchedule {
    /// A schedule holding nothing: partial synchrony degenerates to the
    /// post-GST asynchronous regime from step 0.
    #[must_use]
    pub fn empty() -> Self {
        AdversarialSchedule { hold: 0 }
    }

    /// A schedule holding exactly the given nodes (ids `>= 64` are ignored).
    #[must_use]
    pub fn holding(nodes: &[usize]) -> Self {
        let mut hold = 0u64;
        for &node in nodes {
            if node < 64 {
                hold |= 1 << node;
            }
        }
        AdversarialSchedule { hold }
    }

    /// Whether `node`'s pre-GST transmissions are withheld until GST.
    #[must_use]
    pub fn holds(&self, node: usize) -> bool {
        node < 64 && self.hold & (1 << node) != 0
    }

    /// The held node ids, ascending.
    #[must_use]
    pub fn held_nodes(&self) -> Vec<usize> {
        (0..64).filter(|&node| self.holds(node)).collect()
    }

    /// How many nodes are held.
    #[must_use]
    pub fn held_count(&self) -> u32 {
        self.hold.count_ones()
    }
}

/// The deterministic delivery-schedule family of an asynchronous execution.
///
/// All schedulers are pure functions of `(seed, edge)`; two runs with the
/// same regime value produce the same schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Uniform lag 1: every transmission is delivered at the next step.
    /// Timing-equivalent to the synchronous regime (the baseline scheduler).
    Fifo,
    /// A seeded victim node observes the maximum allowed lag on every
    /// incident edge (in both directions); everyone else runs at lag 1.
    /// This is the delay-maximizing adversary of the regime: it starves one
    /// node of fresh information for as long as fairness allows.
    DelayMax,
    /// Every edge gets its own fixed lag in `1..=delay`, drawn from the
    /// seed — persistent per-edge skew, the schedule shape that reorders
    /// deliveries across different senders the most.
    EdgeLag,
}

impl SchedulerKind {
    /// The stable scheduler name used in specs, reports and labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::DelayMax => "delay-max",
            SchedulerKind::EdgeLag => "edge-lag",
        }
    }

    /// Parses the stable name produced by [`SchedulerKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "fifo" => SchedulerKind::Fifo,
            "delay-max" => SchedulerKind::DelayMax,
            "edge-lag" => SchedulerKind::EdgeLag,
            _ => return None,
        })
    }

    /// Every scheduler, in stable order.
    #[must_use]
    pub fn all() -> [SchedulerKind; 3] {
        [
            SchedulerKind::Fifo,
            SchedulerKind::DelayMax,
            SchedulerKind::EdgeLag,
        ]
    }
}

/// A concrete asynchronous regime: scheduler family, fairness bound, seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsyncRegime {
    /// The deterministic schedule family.
    pub scheduler: SchedulerKind,
    /// The eventual-fairness bound `D ≥ 1`: every transmission is delivered
    /// to every receiver within `D` steps of being sent. This is the bound
    /// the asynchronous consensus algorithm's decision horizon is placed
    /// against.
    pub delay: u32,
    /// The seed all schedule draws derive from.
    pub seed: u64,
}

impl AsyncRegime {
    /// The per-receiver lag (in steps, `1..=delay`) of a transmission
    /// travelling `from → to`. A pure deterministic function of the seed
    /// and the edge — a *fixed* per-edge lag is what produces persistent
    /// cross-sender skew while keeping per-edge FIFO trivially satisfied —
    /// and the simulator additionally clamps deliveries to per-edge FIFO
    /// order.
    #[must_use]
    pub fn lag(&self, from: usize, to: usize, node_count: usize) -> u64 {
        // `delay == 0` is rejected at every construction surface (JSON
        // parse and spec expansion), so a zero here is a hand-built regime
        // that slipped past validation — fail loudly instead of clamping.
        assert!(self.delay >= 1, "AsyncRegime.delay must be >= 1");
        let delay = u64::from(self.delay);
        match self.scheduler {
            SchedulerKind::Fifo => 1,
            SchedulerKind::DelayMax => {
                let victim = (split_mix(self.seed) % node_count.max(1) as u64) as usize;
                if from == victim || to == victim {
                    delay
                } else {
                    1
                }
            }
            SchedulerKind::EdgeLag => {
                let word = split_mix(
                    self.seed ^ ((from as u64) << 32 | to as u64).wrapping_mul(0x9E37_79B9),
                );
                1 + word % delay
            }
        }
    }

    /// A compact label without the seed (seeds are derived per scenario and
    /// recorded separately), used for report rows and rollup grouping.
    #[must_use]
    pub fn label(&self) -> String {
        format!("async-{}-d{}", self.scheduler.name(), self.delay)
    }
}

/// One SplitMix64 finalizer step — the same mixer the campaign seed
/// derivation uses, kept local so `lbc-model` stays dependency-free.
#[must_use]
fn split_mix(word: u64) -> u64 {
    let mut z = word.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parses the `"scheduler"` field of an async regime object (defaulting to
/// [`SchedulerKind::EdgeLag`]). Shared by [`Regime::from_json`] and the
/// campaign spec's `RegimeSpec` parser so the two schemas cannot drift.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the unknown scheduler.
pub fn scheduler_from_json(value: &Json) -> Result<SchedulerKind, JsonError> {
    match value.get("scheduler").and_then(Json::as_str) {
        None => Ok(SchedulerKind::EdgeLag),
        Some(name) => SchedulerKind::from_name(name).ok_or_else(|| JsonError {
            message: format!("unknown scheduler '{name}' (use fifo/delay-max/edge-lag)"),
        }),
    }
}

/// Parses the `"delay"` field of an async regime object (defaulting to 3),
/// enforcing `1..=MAX_DELAY`. Shared with the campaign spec parser.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is malformed or out of range.
pub fn delay_from_json(value: &Json) -> Result<u32, JsonError> {
    match value.get("delay") {
        None => Ok(3),
        Some(json) => {
            let raw = u64::from_json(json)?;
            u32::try_from(raw)
                .ok()
                .filter(|d| (1..=MAX_DELAY).contains(d))
                .ok_or_else(|| JsonError {
                    message: format!("regime delay {raw} out of range (1..={MAX_DELAY})"),
                })
        }
    }
}

/// Parses the `"gst"` field of a partial-sync regime object, enforcing
/// `1..=MAX_GST`. A `gst` of 0 is the asynchronous regime by definition —
/// the error says so instead of silently degenerating. Shared with the
/// campaign spec parser.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is missing, malformed or out of
/// range.
pub fn gst_from_json(value: &Json) -> Result<u32, JsonError> {
    let json = value.get("gst").ok_or_else(|| JsonError {
        message: "partial-sync regime requires a 'gst' field".to_string(),
    })?;
    let raw = u64::from_json(json)?;
    u32::try_from(raw)
        .ok()
        .filter(|g| (1..=MAX_GST).contains(g))
        .ok_or_else(|| JsonError {
            message: if raw == 0 {
                "gst 0 is the asynchronous regime — use {\"kind\": \"async\", ...}".to_string()
            } else {
                format!("regime gst {raw} out of range (1..={MAX_GST})")
            },
        })
}

/// Parses the `"hold"` field of a partial-sync regime object (defaulting to
/// an empty hold-set): an array of held node indices, each `< 64`. Shared
/// with the campaign spec parser.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is malformed or a node is out of
/// range.
pub fn hold_from_json(value: &Json) -> Result<AdversarialSchedule, JsonError> {
    let Some(json) = value.get("hold") else {
        return Ok(AdversarialSchedule::empty());
    };
    let items = json.as_array().ok_or_else(|| JsonError {
        message: "partial-sync 'hold' must be an array of node indices".to_string(),
    })?;
    let mut schedule = AdversarialSchedule::empty();
    for item in items {
        let node = u64::from_json(item)?;
        if node >= 64 {
            return Err(JsonError {
                message: format!("held node {node} out of range (hold-sets cover nodes 0..64)"),
            });
        }
        schedule.hold |= 1 << node;
    }
    Ok(schedule)
}

/// The execution regime of a simulated run. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Regime {
    /// Lockstep synchronous rounds (the source paper's model).
    #[default]
    Synchronous,
    /// Eventually-fair asynchronous delivery under a deterministic seeded
    /// scheduler.
    Asynchronous(AsyncRegime),
    /// Partial synchrony: adversary-scheduled delivery before `gst`,
    /// eventually-fair delivery (the `post` regime) from `gst` on.
    PartialSync {
        /// The Global Stabilization Time, in scheduler steps (`>= 1`; a
        /// GST of 0 *is* the asynchronous regime and is rejected at parse).
        gst: u32,
        /// The adversary-controlled pre-GST schedule.
        pre: AdversarialSchedule,
        /// The eventually-fair regime delivery reverts to at `gst`.
        post: AsyncRegime,
    },
}

impl Regime {
    /// Whether this is the synchronous regime.
    #[must_use]
    pub fn is_synchronous(&self) -> bool {
        matches!(self, Regime::Synchronous)
    }

    /// The fairness bound `D` that holds *after* [`stabilization
    /// time`](Regime::stabilization_time): the maximum number of steps
    /// between a transmission and any of its deliveries. `1` for the
    /// synchronous regime, [`AsyncRegime::delay`] otherwise.
    #[must_use]
    pub fn delay_bound(&self) -> u64 {
        match self {
            Regime::Synchronous => 1,
            Regime::Asynchronous(config) => u64::from(config.delay),
            Regime::PartialSync { post, .. } => u64::from(post.delay),
        }
    }

    /// The Global Stabilization Time: the step from which the fairness
    /// bound [`delay_bound`](Regime::delay_bound) is guaranteed. `0` for
    /// the synchronous and asynchronous regimes (fair from the start),
    /// `gst` for partial synchrony. Protocols that place decision horizons
    /// against the fairness bound must offset them by this value.
    #[must_use]
    pub fn stabilization_time(&self) -> u64 {
        match self {
            Regime::Synchronous | Regime::Asynchronous(_) => 0,
            Regime::PartialSync { gst, .. } => u64::from(*gst),
        }
    }

    /// The regime label used by report rows and rollups: `sync`,
    /// `async-<scheduler>-d<delay>`, or
    /// `psync-g<gst>-h<hold:x>-<post label>` (the hold-set in hex so
    /// distinct schedules never alias in diff identities).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Regime::Synchronous => "sync".to_string(),
            Regime::Asynchronous(config) => config.label(),
            Regime::PartialSync { gst, pre, post } => {
                format!("psync-g{gst}-h{:x}-{}", pre.hold, post.label())
            }
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl ToJson for Regime {
    /// Serializes to the campaign-spec schema: the bare string `"sync"`, or
    /// an object `{"kind": "async", "scheduler": …, "delay": …, "seed": …}`
    /// with the seed as a string (derived seeds use all 64 bits, which a
    /// JSON `f64` number would silently round).
    fn to_json(&self) -> Json {
        match self {
            Regime::Synchronous => Json::Str("sync".to_string()),
            Regime::Asynchronous(config) => Json::object([
                ("kind", Json::Str("async".to_string())),
                ("scheduler", Json::Str(config.scheduler.name().to_string())),
                ("delay", u64::from(config.delay).to_json()),
                ("seed", Json::Str(config.seed.to_string())),
            ]),
            Regime::PartialSync { gst, pre, post } => Json::object([
                ("kind", Json::Str("partial-sync".to_string())),
                ("gst", u64::from(*gst).to_json()),
                (
                    "hold",
                    Json::Arr(
                        pre.held_nodes()
                            .into_iter()
                            .map(|node| (node as u64).to_json())
                            .collect(),
                    ),
                ),
                ("scheduler", Json::Str(post.scheduler.name().to_string())),
                ("delay", u64::from(post.delay).to_json()),
                ("seed", Json::Str(post.seed.to_string())),
            ]),
        }
    }
}

impl FromJson for Regime {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value
            .as_str()
            .or_else(|| value.get("kind").and_then(Json::as_str))
            .ok_or_else(|| JsonError {
                message: "regime must be a name or an object with 'kind'".to_string(),
            })?;
        match kind {
            "sync" | "synchronous" => Ok(Regime::Synchronous),
            "async" | "asynchronous" => Ok(Regime::Asynchronous(AsyncRegime {
                scheduler: scheduler_from_json(value)?,
                delay: delay_from_json(value)?,
                seed: value
                    .get("seed")
                    .map(u64_from_number_or_string)
                    .transpose()?
                    .unwrap_or(0),
            })),
            "partial-sync" | "psync" => Ok(Regime::PartialSync {
                gst: gst_from_json(value)?,
                pre: hold_from_json(value)?,
                post: AsyncRegime {
                    scheduler: scheduler_from_json(value)?,
                    delay: delay_from_json(value)?,
                    seed: value
                        .get("seed")
                        .map(u64_from_number_or_string)
                        .transpose()?
                        .unwrap_or(0),
                },
            }),
            other => Err(JsonError {
                message: format!("unknown regime '{other}' (use sync, async or partial-sync)"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_bounds() {
        assert_eq!(Regime::Synchronous.label(), "sync");
        assert_eq!(Regime::Synchronous.delay_bound(), 1);
        let regime = Regime::Asynchronous(AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 4,
            seed: 9,
        });
        assert_eq!(regime.label(), "async-edge-lag-d4");
        assert_eq!(regime.delay_bound(), 4);
        assert!(!regime.is_synchronous());
        assert!(Regime::default().is_synchronous());
        let psync = Regime::PartialSync {
            gst: 12,
            pre: AdversarialSchedule::holding(&[1, 5]),
            post: AsyncRegime {
                scheduler: SchedulerKind::Fifo,
                delay: 2,
                seed: 7,
            },
        };
        assert_eq!(psync.label(), "psync-g12-h22-async-fifo-d2");
        assert_eq!(psync.delay_bound(), 2);
        assert_eq!(psync.stabilization_time(), 12);
        assert_eq!(Regime::Synchronous.stabilization_time(), 0);
        assert_eq!(regime.stabilization_time(), 0);
        assert!(!psync.is_synchronous());
    }

    #[test]
    fn hold_sets_are_bitmasks_over_small_node_ids() {
        let schedule = AdversarialSchedule::holding(&[0, 3, 63, 64, 200]);
        assert!(schedule.holds(0));
        assert!(schedule.holds(3));
        assert!(schedule.holds(63));
        assert!(!schedule.holds(64));
        assert!(!schedule.holds(1));
        assert_eq!(schedule.held_nodes(), vec![0, 3, 63]);
        assert_eq!(schedule.held_count(), 3);
        assert_eq!(AdversarialSchedule::empty().held_count(), 0);
        assert!(AdversarialSchedule::empty().held_nodes().is_empty());
    }

    #[test]
    fn scheduler_names_roundtrip() {
        for kind in SchedulerKind::all() {
            assert_eq!(SchedulerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_name("banyan"), None);
    }

    #[test]
    fn lags_respect_the_fairness_bound_and_are_deterministic() {
        for kind in SchedulerKind::all() {
            let regime = AsyncRegime {
                scheduler: kind,
                delay: 5,
                seed: 1234,
            };
            for from in 0..6 {
                for to in 0..6 {
                    let lag = regime.lag(from, to, 6);
                    assert!(
                        (1..=5).contains(&lag),
                        "{}: lag {lag} out of bounds",
                        kind.name()
                    );
                    assert_eq!(lag, regime.lag(from, to, 6));
                }
            }
        }
    }

    #[test]
    fn delay_max_lags_only_the_victim() {
        let regime = AsyncRegime {
            scheduler: SchedulerKind::DelayMax,
            delay: 7,
            seed: 3,
        };
        let victim = (split_mix(regime.seed) % 5) as usize;
        for from in 0..5 {
            for to in 0..5 {
                let expected = if from == victim || to == victim { 7 } else { 1 };
                assert_eq!(regime.lag(from, to, 5), expected);
            }
        }
    }

    #[test]
    fn edge_lag_differs_across_edges_for_most_seeds() {
        let regime = AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 6,
            seed: 42,
        };
        let lags: Vec<u64> = (0..8).map(|to| regime.lag(0, to, 9)).collect();
        assert!(
            lags.iter().any(|&l| l != lags[0]),
            "all edges drew the same lag: {lags:?}"
        );
    }

    #[test]
    fn regime_json_roundtrips_with_full_seed_fidelity() {
        let regimes = [
            Regime::Synchronous,
            Regime::Asynchronous(AsyncRegime {
                scheduler: SchedulerKind::Fifo,
                delay: 1,
                seed: 0,
            }),
            Regime::Asynchronous(AsyncRegime {
                scheduler: SchedulerKind::DelayMax,
                delay: 9,
                seed: u64::MAX - 5,
            }),
            Regime::PartialSync {
                gst: 17,
                pre: AdversarialSchedule::holding(&[2, 40, 63]),
                post: AsyncRegime {
                    scheduler: SchedulerKind::EdgeLag,
                    delay: 3,
                    seed: u64::MAX - 9,
                },
            },
            Regime::PartialSync {
                gst: 1,
                pre: AdversarialSchedule::empty(),
                post: AsyncRegime {
                    scheduler: SchedulerKind::Fifo,
                    delay: 1,
                    seed: 0,
                },
            },
        ];
        for regime in regimes {
            let text = regime.to_json().to_string();
            let back = Regime::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, regime, "round-trip failed for {text}");
        }
        // Bare-name and defaulted-object forms parse too.
        let defaulted = Regime::from_json(&Json::parse(r#"{"kind": "async"}"#).unwrap()).unwrap();
        assert_eq!(
            defaulted,
            Regime::Asynchronous(AsyncRegime {
                scheduler: SchedulerKind::EdgeLag,
                delay: 3,
                seed: 0,
            })
        );
        assert!(Regime::from_json(&Json::Str("warp".to_string())).is_err());
        assert!(
            Regime::from_json(&Json::parse(r#"{"kind": "async", "delay": 0}"#).unwrap()).is_err()
        );
        // The fairness bound is capped: an absurd delay must be rejected at
        // parse time, not turn into a gigabyte-scale schedule ring and an
        // effectively unbounded step loop.
        for over in [u64::from(MAX_DELAY) + 1, 4_000_000_000] {
            assert!(Regime::from_json(
                &Json::parse(&format!(r#"{{"kind": "async", "delay": {over}}}"#)).unwrap()
            )
            .is_err());
        }
    }

    #[test]
    fn partial_sync_json_validates_gst_and_hold() {
        // gst is required, must be >= 1 (0 is the async regime — the error
        // should say so) and capped like the delay bound.
        let missing = Regime::from_json(&Json::parse(r#"{"kind": "partial-sync"}"#).unwrap());
        assert!(missing.unwrap_err().message.contains("gst"));
        let zero =
            Regime::from_json(&Json::parse(r#"{"kind": "partial-sync", "gst": 0}"#).unwrap());
        assert!(zero.unwrap_err().message.contains("asynchronous"));
        let over = Regime::from_json(
            &Json::parse(&format!(
                r#"{{"kind": "partial-sync", "gst": {}}}"#,
                u64::from(MAX_GST) + 1
            ))
            .unwrap(),
        );
        assert!(over.is_err());
        // Hold-sets must be arrays of node ids below 64.
        let bad_hold = Regime::from_json(
            &Json::parse(r#"{"kind": "partial-sync", "gst": 3, "hold": [64]}"#).unwrap(),
        );
        assert!(bad_hold.unwrap_err().message.contains("64"));
        // Defaults mirror the async object form: edge-lag, delay 3, seed 0,
        // empty hold-set.
        let defaulted =
            Regime::from_json(&Json::parse(r#"{"kind": "psync", "gst": 5}"#).unwrap()).unwrap();
        assert_eq!(
            defaulted,
            Regime::PartialSync {
                gst: 5,
                pre: AdversarialSchedule::empty(),
                post: AsyncRegime {
                    scheduler: SchedulerKind::EdgeLag,
                    delay: 3,
                    seed: 0,
                },
            }
        );
    }
}
