//! A fast, non-cryptographic hasher for the flood engine's hot maps.
//!
//! This is the FxHash function used by rustc (a multiply-rotate mix),
//! implemented locally because the build environment cannot fetch the
//! `rustc-hash` crate. The flood engine keys its rule-(ii)/(iv) state by
//! `(NodeId, PathId)` pairs — small integers — for which Fx hashing is
//! several times faster than SipHash and collision behaviour is excellent.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing hasher (as used by rustc; not cryptographic).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= u64::from(b) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        let mut map: FxHashMap<(usize, u32), usize> = FxHashMap::default();
        map.insert((3, 7), 1);
        map.insert((3, 7), 2);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&(3, 7)], 2);
    }

    #[test]
    fn distinct_small_keys_do_not_collide_in_practice() {
        let mut set: FxHashSet<(usize, u32)> = FxHashSet::default();
        for a in 0..64 {
            for b in 0..64 {
                set.insert((a, b));
            }
        }
        assert_eq!(set.len(), 64 * 64);
    }

    #[test]
    fn hasher_mixes_byte_streams() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefgh-tail");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefgh-tale");
        assert_ne!(h1.finish(), h2.finish());
    }
}
