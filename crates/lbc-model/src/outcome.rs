//! Consensus execution outcomes and correctness verdicts.

use std::collections::BTreeMap;
use std::fmt;

use crate::{InputAssignment, NodeId, NodeSet, Value};

/// The verdict of checking an execution against the three consensus
/// conditions of Section 3 of the paper.
///
/// * **Agreement** — all non-faulty nodes output the same value.
/// * **Validity** — the output of each non-faulty node is the input of some
///   non-faulty node.
/// * **Termination** — all non-faulty nodes decide in finite time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Verdict {
    /// Whether all non-faulty nodes output the same value.
    pub agreement: bool,
    /// Whether every non-faulty output equals some non-faulty input.
    pub validity: bool,
    /// Whether every non-faulty node decided.
    pub termination: bool,
}

impl Verdict {
    /// Whether the execution satisfies all three consensus conditions.
    #[must_use]
    pub const fn is_correct(self) -> bool {
        self.agreement && self.validity && self.termination
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agreement={} validity={} termination={}",
            self.agreement, self.validity, self.termination
        )
    }
}

/// The outputs of all non-faulty nodes in one consensus execution, together
/// with the inputs and fault set needed to judge correctness.
///
/// # Example
///
/// ```
/// use lbc_model::{ConsensusOutcome, InputAssignment, NodeId, NodeSet, Value};
///
/// let inputs = InputAssignment::from_bits(3, 0b011);
/// let faulty = NodeSet::singleton(NodeId::new(2));
/// let mut outcome = ConsensusOutcome::new(inputs, faulty);
/// outcome.record_output(NodeId::new(0), Value::One);
/// outcome.record_output(NodeId::new(1), Value::One);
/// let verdict = outcome.verdict();
/// assert!(verdict.is_correct());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusOutcome {
    inputs: InputAssignment,
    faulty: NodeSet,
    outputs: BTreeMap<NodeId, Value>,
}

impl ConsensusOutcome {
    /// Creates an outcome record for an execution with the given inputs and
    /// faulty set. Outputs are recorded as non-faulty nodes decide.
    #[must_use]
    pub fn new(inputs: InputAssignment, faulty: NodeSet) -> Self {
        ConsensusOutcome {
            inputs,
            faulty,
            outputs: BTreeMap::new(),
        }
    }

    /// Records the decided output of a node. Outputs recorded for faulty
    /// nodes are ignored when judging correctness.
    pub fn record_output(&mut self, node: NodeId, value: Value) {
        self.outputs.insert(node, value);
    }

    /// The inputs of the execution.
    #[must_use]
    pub fn inputs(&self) -> &InputAssignment {
        &self.inputs
    }

    /// The faulty set of the execution.
    #[must_use]
    pub fn faulty(&self) -> &NodeSet {
        &self.faulty
    }

    /// The decided output of `node`, if it decided.
    #[must_use]
    pub fn output_of(&self, node: NodeId) -> Option<Value> {
        self.outputs.get(&node).copied()
    }

    /// Iterates over the recorded `(node, output)` pairs of non-faulty nodes.
    pub fn non_faulty_outputs(&self) -> impl Iterator<Item = (NodeId, Value)> + '_ {
        self.outputs
            .iter()
            .filter(|(node, _)| !self.faulty.contains(**node))
            .map(|(node, value)| (*node, *value))
    }

    /// The set of non-faulty nodes for this execution.
    #[must_use]
    pub fn non_faulty_nodes(&self) -> NodeSet {
        (0..self.inputs.len())
            .map(NodeId::new)
            .filter(|node| !self.faulty.contains(*node))
            .collect()
    }

    /// The common output of all non-faulty nodes, if agreement holds and at
    /// least one non-faulty node decided.
    #[must_use]
    pub fn agreed_value(&self) -> Option<Value> {
        let mut common: Option<Value> = None;
        for (_, value) in self.non_faulty_outputs() {
            match common {
                None => common = Some(value),
                Some(c) if c != value => return None,
                Some(_) => {}
            }
        }
        common
    }

    /// Judges the execution against agreement, validity, and termination.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        let non_faulty = self.non_faulty_nodes();

        let termination = non_faulty
            .iter()
            .all(|node| self.outputs.contains_key(&node));

        let agreement = self.agreed_value().is_some() || self.non_faulty_outputs().next().is_none();

        let non_faulty_inputs: Vec<Value> = non_faulty
            .iter()
            .map(|node| self.inputs.get(node))
            .collect();
        let validity = self
            .non_faulty_outputs()
            .all(|(_, out)| non_faulty_inputs.contains(&out));

        Verdict {
            agreement,
            validity,
            termination,
        }
    }
}

impl fmt::Display for ConsensusOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "outputs: ")?;
        let mut first = true;
        for (node, value) in &self.outputs {
            if !first {
                write!(f, ", ")?;
            }
            let marker = if self.faulty.contains(*node) { "*" } else { "" };
            write!(f, "{node}{marker}={value}")?;
            first = false;
        }
        write!(f, " ({})", self.verdict())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn outcome_with(
        inputs: InputAssignment,
        faulty: &[usize],
        outputs: &[(usize, Value)],
    ) -> ConsensusOutcome {
        let faulty: NodeSet = faulty.iter().map(|&i| n(i)).collect();
        let mut o = ConsensusOutcome::new(inputs, faulty);
        for &(i, v) in outputs {
            o.record_output(n(i), v);
        }
        o
    }

    #[test]
    fn correct_execution_passes_all_conditions() {
        let o = outcome_with(
            InputAssignment::from_bits(3, 0b011),
            &[2],
            &[(0, Value::One), (1, Value::One)],
        );
        assert!(o.verdict().is_correct());
        assert_eq!(o.agreed_value(), Some(Value::One));
    }

    #[test]
    fn disagreement_is_detected() {
        let o = outcome_with(
            InputAssignment::from_bits(3, 0b011),
            &[],
            &[(0, Value::One), (1, Value::Zero), (2, Value::Zero)],
        );
        let v = o.verdict();
        assert!(!v.agreement);
        assert!(v.termination);
        assert!(!v.is_correct());
    }

    #[test]
    fn validity_violation_is_detected() {
        // All non-faulty inputs are 0 but they output 1.
        let o = outcome_with(
            InputAssignment::all_zero(3),
            &[2],
            &[(0, Value::One), (1, Value::One)],
        );
        let v = o.verdict();
        assert!(v.agreement);
        assert!(!v.validity);
    }

    #[test]
    fn missing_output_breaks_termination() {
        let o = outcome_with(
            InputAssignment::all_one(3),
            &[],
            &[(0, Value::One), (1, Value::One)],
        );
        let v = o.verdict();
        assert!(!v.termination);
        assert!(!v.is_correct());
    }

    #[test]
    fn faulty_outputs_are_ignored() {
        // The faulty node reports a conflicting value; agreement still holds.
        let o = outcome_with(
            InputAssignment::all_one(3),
            &[2],
            &[(0, Value::One), (1, Value::One), (2, Value::Zero)],
        );
        assert!(o.verdict().is_correct());
        assert_eq!(o.non_faulty_outputs().count(), 2);
        assert_eq!(o.output_of(n(2)), Some(Value::Zero));
    }

    #[test]
    fn validity_allows_either_value_when_inputs_are_mixed() {
        let o = outcome_with(
            InputAssignment::from_bits(4, 0b0011),
            &[],
            &[
                (0, Value::Zero),
                (1, Value::Zero),
                (2, Value::Zero),
                (3, Value::Zero),
            ],
        );
        assert!(o.verdict().is_correct());
    }

    #[test]
    fn display_marks_faulty_nodes() {
        let o = outcome_with(
            InputAssignment::all_one(2),
            &[1],
            &[(0, Value::One), (1, Value::Zero)],
        );
        let s = o.to_string();
        assert!(s.contains("v0=1"));
        assert!(s.contains("v1*=0"));
    }
}
