//! Node paths as carried inside flooded messages.

use std::fmt;

use crate::{NodeId, NodeSet};

/// A sequence of node identifiers, the `Π` carried by flooding messages
/// `(b, Π)` in Algorithms 1 and 3 of the paper.
///
/// A `Path` is *only* a sequence of identifiers. Whether consecutive entries
/// are actually adjacent in a concrete graph is checked by
/// `lbc_graph::Graph::is_path`, mirroring flooding rule (i): "if path `Π - u`
/// does not exist in graph `G`, then node `v` discards the message".
///
/// Paper terminology implemented here:
///
/// * **endpoints** — first and last node of the path,
/// * **internal nodes** — every node that is not an endpoint,
/// * a path **excludes** a set `X` if no *internal* node belongs to `X`
///   (endpoints may belong to `X`),
/// * two `uv`-paths are **node-disjoint** if they share no internal node,
/// * two `Uv`-paths are node-disjoint if they share no node except the common
///   endpoint `v`.
///
/// # Example
///
/// ```
/// use lbc_model::{NodeId, NodeSet, Path};
///
/// let p = Path::from_nodes([NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// assert_eq!(p.endpoints(), Some((NodeId::new(0), NodeId::new(2))));
/// assert_eq!(p.internal_nodes().collect::<Vec<_>>(), vec![NodeId::new(1)]);
/// assert!(p.excludes(&NodeSet::from_iter([NodeId::new(0)]))); // endpoints may be in X
/// assert!(!p.excludes(&NodeSet::from_iter([NodeId::new(1)])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// The empty path `⊥` used when a node initiates flooding of its own value.
    #[must_use]
    pub const fn empty() -> Self {
        Path { nodes: Vec::new() }
    }

    /// Creates a path from a sequence of node identifiers.
    pub fn from_nodes<I>(nodes: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        Path {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Creates a single-node path, e.g. the path `P_vv` "containing only node
    /// v" used in step (b) of Algorithm 1 for a node's own value.
    #[must_use]
    pub fn singleton(node: NodeId) -> Self {
        Path { nodes: vec![node] }
    }

    /// Returns a new path with `node` appended — the paper's `Π - u`
    /// concatenation.
    #[must_use]
    pub fn extended(&self, node: NodeId) -> Self {
        let mut nodes = self.nodes.clone();
        nodes.push(node);
        Path { nodes }
    }

    /// Appends `node` in place.
    pub fn push(&mut self, node: NodeId) {
        self.nodes.push(node);
    }

    /// Number of nodes on the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path is the empty path `⊥`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes of the path, in order.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates over the nodes of the path in order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Whether `node` appears anywhere on the path (flooding rule (iii)).
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// First node of the path, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// Last node of the path, if any.
    #[must_use]
    pub fn last(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Both endpoints of the path: `(first, last)`.
    ///
    /// For a single-node path both endpoints are that node. Returns `None`
    /// for the empty path.
    #[must_use]
    pub fn endpoints(&self) -> Option<(NodeId, NodeId)> {
        Some((self.first()?, self.last()?))
    }

    /// Iterates over the internal nodes of the path (all nodes that are not
    /// endpoints).
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let len = self.nodes.len();
        let interior = if len <= 2 {
            &[]
        } else {
            &self.nodes[1..len - 1]
        };
        interior.iter().copied()
    }

    /// Whether the path *excludes* the node set `x`: none of its internal
    /// nodes belong to `x`. Endpoints may belong to `x`.
    #[must_use]
    pub fn excludes(&self, x: &NodeSet) -> bool {
        self.internal_nodes().all(|node| !x.contains(node))
    }

    /// Whether the path is *fault-free* with respect to the faulty set
    /// `faulty`: no internal node is faulty. (A fault-free path may have a
    /// faulty node as an endpoint.)
    #[must_use]
    pub fn is_fault_free(&self, faulty: &NodeSet) -> bool {
        self.excludes(faulty)
    }

    /// Whether the path visits any node more than once.
    #[must_use]
    pub fn has_repeated_node(&self) -> bool {
        let mut seen = NodeSet::new();
        for node in self.iter() {
            if !seen.insert(node) {
                return true;
            }
        }
        false
    }

    /// Whether this path and `other` are node-disjoint `uv`-paths: they share
    /// no internal nodes.
    #[must_use]
    pub fn internally_disjoint(&self, other: &Path) -> bool {
        let mine: NodeSet = self.internal_nodes().collect();
        other.internal_nodes().all(|node| !mine.contains(node))
    }

    /// Whether this path and `other` are node-disjoint `Uv`-paths with common
    /// endpoint `v`: they share no nodes at all except `v`.
    #[must_use]
    pub fn disjoint_except_endpoint(&self, other: &Path, v: NodeId) -> bool {
        let mine: NodeSet = self.iter().filter(|&node| node != v).collect();
        other
            .iter()
            .filter(|&node| node != v)
            .all(|node| !mine.contains(node))
    }

    /// Returns the reversed path.
    #[must_use]
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Path { nodes }
    }
}

impl FromIterator<NodeId> for Path {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        Path::from_nodes(iter)
    }
}

impl Extend<NodeId> for Path {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        self.nodes.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "⊥");
        }
        let mut first = true;
        for node in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{node}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn p(ids: &[usize]) -> Path {
        Path::from_nodes(ids.iter().map(|&i| n(i)))
    }

    #[test]
    fn empty_path_displays_as_bottom() {
        assert_eq!(Path::empty().to_string(), "⊥");
        assert!(Path::empty().is_empty());
        assert_eq!(Path::empty().endpoints(), None);
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let base = p(&[0, 1]);
        let ext = base.extended(n(2));
        assert_eq!(base.len(), 2);
        assert_eq!(ext.len(), 3);
        assert_eq!(ext.last(), Some(n(2)));
    }

    #[test]
    fn internal_nodes_of_short_paths_are_empty() {
        assert_eq!(p(&[]).internal_nodes().count(), 0);
        assert_eq!(p(&[4]).internal_nodes().count(), 0);
        assert_eq!(p(&[4, 5]).internal_nodes().count(), 0);
        assert_eq!(
            p(&[4, 5, 6]).internal_nodes().collect::<Vec<_>>(),
            vec![n(5)]
        );
    }

    #[test]
    fn excludes_ignores_endpoints() {
        let path = p(&[0, 1, 2, 3]);
        let ends: NodeSet = [n(0), n(3)].into_iter().collect();
        let mid: NodeSet = [n(2)].into_iter().collect();
        assert!(path.excludes(&ends));
        assert!(!path.excludes(&mid));
    }

    #[test]
    fn fault_free_allows_faulty_endpoint() {
        let path = p(&[7, 1, 2]);
        let faulty: NodeSet = [n(7)].into_iter().collect();
        assert!(path.is_fault_free(&faulty));
        let faulty_internal: NodeSet = [n(1)].into_iter().collect();
        assert!(!path.is_fault_free(&faulty_internal));
    }

    #[test]
    fn repeated_node_detection() {
        assert!(!p(&[0, 1, 2]).has_repeated_node());
        assert!(p(&[0, 1, 0]).has_repeated_node());
        assert!(!Path::empty().has_repeated_node());
    }

    #[test]
    fn internally_disjoint_paths() {
        let a = p(&[0, 1, 2, 5]);
        let b = p(&[0, 3, 4, 5]);
        let c = p(&[0, 1, 4, 5]);
        assert!(a.internally_disjoint(&b));
        assert!(!a.internally_disjoint(&c));
    }

    #[test]
    fn uv_disjointness_with_shared_endpoint() {
        // Two Uv-paths to v = 5 from distinct sources 0 and 3.
        let a = p(&[0, 1, 5]);
        let b = p(&[3, 4, 5]);
        let c = p(&[0, 4, 5]); // shares source 0 with `a`
        assert!(a.disjoint_except_endpoint(&b, n(5)));
        assert!(!a.disjoint_except_endpoint(&c, n(5)));
    }

    #[test]
    fn singleton_path_endpoints_are_equal() {
        let path = Path::singleton(n(9));
        assert_eq!(path.endpoints(), Some((n(9), n(9))));
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn reversed_reverses() {
        assert_eq!(p(&[0, 1, 2]).reversed(), p(&[2, 1, 0]));
    }

    #[test]
    fn display_joins_with_dash() {
        assert_eq!(p(&[1, 2, 3]).to_string(), "v1-v2-v3");
    }

    #[test]
    fn collect_and_extend() {
        let path: Path = [n(1), n(2)].into_iter().collect();
        assert_eq!(path.len(), 2);
        let mut path = path;
        path.extend([n(3)]);
        assert_eq!(path.last(), Some(n(3)));
        let nodes: Vec<NodeId> = (&path).into_iter().collect();
        assert_eq!(nodes, vec![n(1), n(2), n(3)]);
    }
}
