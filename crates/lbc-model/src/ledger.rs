//! The shared flood fabric: execution-wide broadcast-once records.
//!
//! Under the local broadcast model, every neighbor of a transmitter `u`
//! receives the *same* first message for each `(u, Π)` flooding key — that is
//! rule (ii) of the paper's Algorithm 1, and it is what suppresses
//! equivocation. Before this module existed the workspace only used the
//! invariant for correctness: each of the `n` simulated nodes kept a private
//! `(sender, path) → value` map and re-derived the same facts `n` times per
//! execution. The [`FloodLedger`] records each distinct broadcast **once per
//! execution**; per-node flood state collapses to [`DenseBits`] membership
//! bitsets over arena/ledger indices plus a (normally empty) per-node
//! override map.
//!
//! **Sharing is an optimization, not a soundness assumption.** A node whose
//! own first value for a key differs from the ledger's record — possible only
//! when the communication model lets the sender deliver different copies to
//! different receivers, i.e. hybrid-model equivocators or the point-to-point
//! baseline — stores a per-node override, and queries always answer with the
//! node's own view. The ledger-backed engines are therefore observably
//! identical to the per-node control engines under *every* communication
//! model; under local broadcast the overrides are provably empty and every
//! receiver after the first pays one lookup instead of one insertion.
//!
//! # Channels
//!
//! A single execution can run several logically independent floods whose
//! rule-(ii) key spaces must not collide: Algorithm 2 floods values, reports
//! and decisions; Algorithm 1 re-floods once per candidate fault set; the
//! point-to-point baseline floods once per king-algorithm step. Each such
//! flood opens a **channel** named by a `(tag, epoch)` pair — every node of
//! the execution derives the same name at the same protocol step, so they
//! all share one channel without coordination. Channels two epochs behind
//! the newest of their tag are retired and their storage recycled.

use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

use crate::fx::FxHashMap;
use crate::{NodeId, Path, PathId, Value};

/// A growable bitset over dense `usize` indices.
///
/// The flood engines key per-node rule-(ii)/(iv) membership by arena or
/// ledger indices; a bitset turns each membership test into a word read
/// where a hash map would hash and probe.
#[derive(Debug, Clone, Default)]
pub struct DenseBits {
    words: Vec<u64>,
}

impl DenseBits {
    /// Creates an empty bitset.
    #[must_use]
    pub fn new() -> Self {
        DenseBits::default()
    }

    /// Whether `index` is in the set.
    #[inline]
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|word| word & (1 << (index % 64)) != 0)
    }

    /// Inserts `index`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1 << (index % 64);
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Removes every element, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates the set indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(word_index, word)| {
                let mut bits = *word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(word_index * 64 + bit)
                })
            })
    }

    /// Number of set bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Handle to one flood channel of a [`FloodLedger`].
///
/// Obtained from [`FloodLedger::open`]; stable for the lifetime of the
/// channel (until it is retired two epochs later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelId(u32);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The shared record of one observation-flood broadcast (Algorithm 2's
/// phase-2 reports): everything about a wire message that is the same for
/// every receiver.
///
/// The first receiver to process a report pays rule-(i) validation and relay
/// interning and stores the result here; every other receiver's processing is
/// one key lookup plus per-node bit operations.
#[derive(Debug, Clone, Copy)]
pub struct ReportRecord {
    /// Whether the message passed the receiver-independent validity checks
    /// (rule (i) plus the report-shape checks). Invalid broadcasts are
    /// recorded too, so repeat receivers reject them with one lookup.
    pub valid: bool,
    /// The first value this broadcast delivered (every receiver sees the
    /// same one under local broadcast).
    pub value: Value,
    /// The report's relay path *including* the transmitter.
    pub relay: PathId,
    /// The first 64 bits of the relay path's member bitset, memoized so the
    /// per-receiver rule-(iii) check (`me ∈ relay?`) is a register test for
    /// node indices below 64 instead of an arena pointer chase.
    pub relay_members_low: u64,
    /// The node whose phase-1 transmission is being reported.
    pub observed: NodeId,
    /// The path annotation of the observed transmission.
    pub observed_path: PathId,
}

/// Rule-(ii) key of an observation-flood broadcast — the wire identity
/// `(transmitter, relay-path-so-far, observed, observed_path)` packed into
/// two words (see [`report_key`]), so the ledger's keyed map hashes two
/// machine words instead of four.
pub type ReportKey = (u64, u64);

/// Packs an observation-flood wire identity into a [`ReportKey`].
///
/// Collision-free: node indices are bounded by the graph size and path ids
/// are `u32` by construction, so each component fits its 32-bit half.
#[inline]
#[must_use]
pub fn report_key(
    from: NodeId,
    path: PathId,
    observed: NodeId,
    observed_path: PathId,
) -> ReportKey {
    debug_assert!(from.index() <= u32::MAX as usize);
    debug_assert!(observed.index() <= u32::MAX as usize);
    (
        ((from.index() as u64) << 32) | path.index() as u64,
        ((observed.index() as u64) << 32) | observed_path.index() as u64,
    )
}

#[derive(Debug, Default)]
struct Channel {
    /// Relay-id-indexed first values for floods whose rule-(ii) key is the
    /// relay path itself (`Π‑sender`): 0 = unrecorded, else `value + 1`.
    relay_first: Vec<u8>,
    /// Key → record index for observation floods (wider rule-(ii) keys).
    keyed: FxHashMap<ReportKey, u32>,
    /// The keyed records, densely indexed.
    records: Vec<ReportRecord>,
    /// Per-round slot cache over the simulator's shared round buffer, one
    /// entry per transmission slot carrying every receiver-independent fact
    /// a receiver needs (validity, first value, relay id, member word).
    /// Every receiver of a broadcast sees the same slot, so the first
    /// receiver's key lookup is reused by all the others as **one cache
    /// line read** — in particular, a rule-(iii) drop never touches the
    /// record table or any per-node structure at all. Entries are verified
    /// against the packed key, so a stale or colliding slot — possible with
    /// test-local direct inboxes — safely misses.
    slot_cache: Vec<SlotEntry>,
}

/// One slot-cache entry; see `Channel::slot_cache`.
#[derive(Debug, Clone, Copy, Default)]
struct SlotEntry {
    generation: u32,
    key: ReportKey,
    lookup: ReportLookup,
}

/// The receiver-independent facts of one observation-flood broadcast, as
/// returned by [`FloodLedger::report_lookup_at_slot`]: everything a receiver
/// needs to apply rules (ii)–(iv) without touching the record table.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportLookup {
    /// Dense record index (for per-node bitsets and the accepted list).
    pub index: u32,
    /// Whether the broadcast passed the receiver-independent checks.
    pub valid: bool,
    /// The first value the broadcast delivered anywhere.
    pub value: Value,
    /// The relay path including the transmitter.
    pub relay: PathId,
    /// First 64 bits of the relay's member bitset (rule (iii) in a register
    /// test for node indices < 64).
    pub relay_members_low: u64,
}

impl ReportLookup {
    fn of(index: u32, record: &ReportRecord) -> Self {
        ReportLookup {
            index,
            valid: record.valid,
            value: record.value,
            relay: record.relay,
            relay_members_low: record.relay_members_low,
        }
    }

    /// Whether `node` is on the relay path, via the memoized low word;
    /// `fallback` answers for node indices ≥ 64.
    #[inline]
    #[must_use]
    pub fn relay_contains(&self, node: NodeId, fallback: impl FnOnce() -> bool) -> bool {
        if node.index() < 64 {
            self.relay_members_low & (1u64 << node.index()) != 0
        } else {
            fallback()
        }
    }
}

impl Channel {
    fn clear(&mut self) {
        self.relay_first.clear();
        self.keyed.clear();
        self.records.clear();
        self.slot_cache.clear();
    }
}

/// A channel lifecycle event recorded by the ledger's (opt-in) event log.
///
/// The ledger cannot depend on the telemetry crate (the dependency points
/// the other way), so instrumented executions enable this minimal internal
/// log via [`FloodLedger::set_event_log`] and drain it with
/// [`FloodLedger::take_channel_events`], translating entries into the
/// observer's event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelEvent {
    /// A `(tag, epoch)` channel was opened into the dense slot `channel`.
    Opened {
        /// Channel tag.
        tag: u32,
        /// Channel epoch.
        epoch: u32,
        /// Dense slot assigned.
        channel: u32,
    },
    /// A `(tag, epoch)` channel was retired and its slot recycled.
    Retired {
        /// Channel tag.
        tag: u32,
        /// Channel epoch.
        epoch: u32,
        /// Dense slot recycled.
        channel: u32,
    },
}

/// The execution-wide flood ledger. See the [module docs](self).
///
/// Like the [`crate::PathArena`], one ledger exists per simulated execution
/// and is shared by every node through the simulator's node context
/// ([`SharedFloodLedger`]).
#[derive(Debug, Default)]
pub struct FloodLedger {
    names: FxHashMap<(u32, u32), u32>,
    channels: Vec<Channel>,
    free: Vec<u32>,
    /// Physical-epoch offset of the current instance session: every logical
    /// epoch a protocol derives is shifted by this amount before naming a
    /// channel, so consecutive consensus instances of a chained run never
    /// collide on `(tag, epoch)` names. See [`FloodLedger::begin_session`].
    session_base: u32,
    /// One past the highest physical epoch any channel was opened at.
    session_peak: u32,
    /// When `true`, channel open/retire operations append to `events`.
    /// Off by default: the uninstrumented hot path pays one branch.
    log_events: bool,
    events: Vec<ChannelEvent>,
    /// Execution-shared memo for disjoint-path plans between node pairs:
    /// deterministic pure functions of the (fixed) communication graph that
    /// every node would otherwise recompute identically. Algorithm 2's fault
    /// identification keys this by `(origin, other)`.
    pair_paths: FxHashMap<(NodeId, NodeId), Rc<Vec<Path>>>,
}

impl FloodLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        FloodLedger::default()
    }

    /// Opens (or joins) the channel named `(tag, epoch)`. Every node of the
    /// execution that derives the same name gets the same channel. Opening
    /// epoch `e` retires **every** channel of the tag at epoch `e − 2` or
    /// older, whose storage is recycled — by then every node has moved past
    /// them (protocol phases advance together, so nodes are never more than
    /// one epoch apart). Retiring the whole stale range, not just `e − 2`
    /// exactly, keeps consumers that derive non-consecutive epochs (e.g. a
    /// step-indexed flood that skips step numbers) from leaking channels.
    pub fn open(&mut self, tag: u32, epoch: u32) -> ChannelId {
        let epoch = self.session_base + epoch;
        self.session_peak = self.session_peak.max(epoch + 1);
        if let Some(&slot) = self.names.get(&(tag, epoch)) {
            return ChannelId(slot);
        }
        if epoch >= 2 {
            self.retire_through_physical(tag, epoch - 2);
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.channels.push(Channel::default());
            u32::try_from(self.channels.len() - 1).expect("ledger overflow: > u32::MAX channels")
        });
        self.channels[slot as usize].clear();
        self.names.insert((tag, epoch), slot);
        if self.log_events {
            self.events.push(ChannelEvent::Opened {
                tag,
                epoch,
                channel: slot,
            });
        }
        ChannelId(slot)
    }

    /// Retires every channel of `tag` whose epoch is at most `through`
    /// (a logical epoch of the current session), recycling their storage.
    /// Safe to call redundantly; called by [`FloodLedger::open`] and by the
    /// flood engines' restart paths.
    pub fn retire_through(&mut self, tag: u32, through: u32) {
        self.retire_through_physical(tag, self.session_base + through);
    }

    /// Begins the next instance session of a chained (repeated-consensus)
    /// run: every subsequent [`FloodLedger::open`] maps its logical epoch
    /// strictly above every physical epoch the previous session touched.
    ///
    /// The first open of each tag in the new session therefore retires that
    /// tag's channels from **two sessions back** (the usual two-epoch rule,
    /// applied at instance granularity), while the immediately previous
    /// session's newest channel stays live exactly long enough for its flood
    /// tail to drain into it. Returns the new session's base physical epoch.
    pub fn begin_session(&mut self) -> u32 {
        self.session_base = self.session_peak.max(self.session_base + 1);
        self.session_base
    }

    /// The largest number of concurrently live channels sharing one tag —
    /// the quantity the two-epoch retirement rule bounds (≤ 2 in steady
    /// state, whether epochs advance within one instance or across chained
    /// sessions).
    #[must_use]
    pub fn max_live_channels_per_tag(&self) -> usize {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for (tag, _) in self.names.keys() {
            *counts.entry(*tag).or_default() += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct tags with at least one live channel.
    #[must_use]
    pub fn live_tag_count(&self) -> usize {
        let mut tags: Vec<u32> = self.names.keys().map(|(tag, _)| *tag).collect();
        tags.sort_unstable();
        tags.dedup();
        tags.len()
    }

    fn retire_through_physical(&mut self, tag: u32, through: u32) {
        let mut stale: Vec<(u32, u32)> = self
            .names
            .keys()
            .filter(|(t, e)| *t == tag && *e <= through)
            .copied()
            .collect();
        // Epoch order, not map order: slot recycling and the channel-event
        // log must not depend on hash iteration order.
        stale.sort_unstable();
        for name in stale {
            if let Some(retired) = self.names.remove(&name) {
                self.channels[retired as usize].clear();
                self.free.push(retired);
                if self.log_events {
                    self.events.push(ChannelEvent::Retired {
                        tag: name.0,
                        epoch: name.1,
                        channel: retired,
                    });
                }
            }
        }
    }

    /// Enables or disables the channel-event log. Disabling also discards
    /// any pending entries.
    pub fn set_event_log(&mut self, enabled: bool) {
        self.log_events = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    /// Whether the channel-event log is enabled.
    #[must_use]
    pub fn event_log_enabled(&self) -> bool {
        self.log_events
    }

    /// Drains the pending channel-lifecycle events, in occurrence order.
    pub fn take_channel_events(&mut self) -> Vec<ChannelEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of live channels.
    #[must_use]
    pub fn live_channels(&self) -> usize {
        self.names.len()
    }

    /// Number of channel slots ever allocated (live + recycled). Bounded
    /// retirement means this stays within a small constant of the number of
    /// *concurrently* live channels, no matter how many epochs a long
    /// multi-phase execution opens.
    #[must_use]
    pub fn allocated_channels(&self) -> usize {
        self.channels.len()
    }

    /// Records the broadcast with relay path `relay` carrying `value`,
    /// unless one was recorded before; returns the **first** value recorded
    /// for the key (which is `value` itself on first record).
    ///
    /// A caller whose own observed value differs from the returned first
    /// value must keep a per-node override — see the module docs.
    pub fn record_relay(&mut self, channel: ChannelId, relay: PathId, value: Value) -> Value {
        let first = &mut self.channels[channel.0 as usize].relay_first;
        let index = relay.index();
        if index >= first.len() {
            first.resize(index + 1, 0);
        }
        match first[index] {
            0 => {
                first[index] = encode(value);
                value
            }
            recorded => decode(recorded),
        }
    }

    /// The first value recorded for the relay key, if any.
    #[must_use]
    pub fn relay_value(&self, channel: ChannelId, relay: PathId) -> Option<Value> {
        self.channels[channel.0 as usize]
            .relay_first
            .get(relay.index())
            .copied()
            .filter(|&v| v != 0)
            .map(decode)
    }

    /// Looks up the record of an observation-flood key.
    #[must_use]
    pub fn keyed_record(&self, channel: ChannelId, key: &ReportKey) -> Option<(u32, ReportRecord)> {
        let channel = &self.channels[channel.0 as usize];
        let index = *channel.keyed.get(key)?;
        Some((index, channel.records[index as usize]))
    }

    /// [`FloodLedger::keyed_record`] accelerated by the per-round slot
    /// cache: if a previous receiver of round `generation` already resolved
    /// the broadcast in `slot`, the lookup degenerates to one verified
    /// cache-line read. Pass `generation == 0` to bypass the cache (e.g.
    /// when slots are not globally unique). On a cache miss the underlying
    /// map answers and the slot is (re)filled.
    #[must_use]
    pub fn report_lookup_at_slot(
        &mut self,
        channel: ChannelId,
        slot: u32,
        generation: u32,
        key: &ReportKey,
    ) -> Option<ReportLookup> {
        let slots = &self.channels[channel.0 as usize];
        if generation != 0 {
            if let Some(entry) = slots.slot_cache.get(slot as usize) {
                if entry.generation == generation && entry.key == *key {
                    return Some(entry.lookup);
                }
            }
        }
        let index = *slots.keyed.get(key)?;
        Some(self.cache_slot(channel, slot, generation, *key, index))
    }

    /// Fills the per-round slot cache for the record at `index` (no-op for
    /// `generation == 0`, which disables caching) and returns its lookup
    /// view. The single fill path for both the first receiver (after
    /// [`FloodLedger::insert_keyed`]) and repeat receivers whose cache
    /// entry was evicted by a newer generation.
    pub fn cache_slot(
        &mut self,
        channel: ChannelId,
        slot: u32,
        generation: u32,
        key: ReportKey,
        index: u32,
    ) -> ReportLookup {
        let channel = &mut self.channels[channel.0 as usize];
        let lookup = ReportLookup::of(index, &channel.records[index as usize]);
        if generation != 0 {
            let slot = slot as usize;
            if slot >= channel.slot_cache.len() {
                channel.slot_cache.resize(slot + 1, SlotEntry::default());
            }
            channel.slot_cache[slot] = SlotEntry {
                generation,
                key,
                lookup,
            };
        }
        lookup
    }

    /// Inserts the record for an observation-flood key (first receiver
    /// only); returns its dense index.
    ///
    /// # Panics
    ///
    /// Panics if the key was already recorded — callers must look it up
    /// first.
    pub fn insert_keyed(
        &mut self,
        channel: ChannelId,
        key: ReportKey,
        record: ReportRecord,
    ) -> u32 {
        let channel = &mut self.channels[channel.0 as usize];
        let index =
            u32::try_from(channel.records.len()).expect("ledger overflow: > u32::MAX records");
        let previous = channel.keyed.insert(key, index);
        assert!(previous.is_none(), "keyed broadcast recorded twice");
        channel.records.push(record);
        index
    }

    /// The record at a dense index previously returned by
    /// [`FloodLedger::keyed_record`] / [`FloodLedger::insert_keyed`].
    #[must_use]
    pub fn record(&self, channel: ChannelId, index: u32) -> ReportRecord {
        self.channels[channel.0 as usize].records[index as usize]
    }

    /// The memoized disjoint-path plan for a node pair, if one was computed.
    #[must_use]
    pub fn pair_paths(&self, u: NodeId, v: NodeId) -> Option<Rc<Vec<Path>>> {
        self.pair_paths.get(&(u, v)).cloned()
    }

    /// Memoizes the disjoint-path plan for a node pair. The plan must be a
    /// deterministic function of the execution's communication graph (every
    /// node computes the same one), which is what makes sharing sound.
    pub fn set_pair_paths(&mut self, u: NodeId, v: NodeId, paths: Vec<Path>) -> Rc<Vec<Path>> {
        let paths = Rc::new(paths);
        self.pair_paths.insert((u, v), Rc::clone(&paths));
        paths
    }
}

#[inline]
fn encode(value: Value) -> u8 {
    match value {
        Value::Zero => 1,
        Value::One => 2,
    }
}

#[inline]
fn decode(byte: u8) -> Value {
    match byte {
        1 => Value::Zero,
        _ => Value::One,
    }
}

/// A clonable handle to the [`FloodLedger`] shared by every node of a
/// simulated execution, threaded through the simulator's node context
/// exactly like [`crate::SharedPathArena`].
#[derive(Debug, Clone, Default)]
pub struct SharedFloodLedger {
    inner: Rc<RefCell<FloodLedger>>,
}

impl SharedFloodLedger {
    /// Creates a fresh, empty ledger.
    #[must_use]
    pub fn new() -> Self {
        SharedFloodLedger::default()
    }

    /// Immutable access to the underlying ledger.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is currently mutably borrowed.
    #[must_use]
    pub fn borrow(&self) -> Ref<'_, FloodLedger> {
        self.inner.borrow()
    }

    /// Mutable access to the underlying ledger.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is currently borrowed.
    #[must_use]
    pub fn borrow_mut(&self) -> RefMut<'_, FloodLedger> {
        self.inner.borrow_mut()
    }

    /// Opens (or joins) a named channel. See [`FloodLedger::open`].
    pub fn open(&self, tag: u32, epoch: u32) -> ChannelId {
        self.inner.borrow_mut().open(tag, epoch)
    }

    /// Retires every channel of `tag` at epoch `through` or older. See
    /// [`FloodLedger::retire_through`].
    pub fn retire_through(&self, tag: u32, through: u32) {
        self.inner.borrow_mut().retire_through(tag, through);
    }

    /// Begins the next instance session of a chained run. See
    /// [`FloodLedger::begin_session`].
    pub fn begin_session(&self) -> u32 {
        self.inner.borrow_mut().begin_session()
    }

    /// Records a relay-keyed broadcast. See [`FloodLedger::record_relay`].
    pub fn record_relay(&self, channel: ChannelId, relay: PathId, value: Value) -> Value {
        self.inner.borrow_mut().record_relay(channel, relay, value)
    }

    /// The first value recorded for a relay key. See
    /// [`FloodLedger::relay_value`].
    #[must_use]
    pub fn relay_value(&self, channel: ChannelId, relay: PathId) -> Option<Value> {
        self.inner.borrow().relay_value(channel, relay)
    }

    /// Enables or disables the channel-event log. See
    /// [`FloodLedger::set_event_log`].
    pub fn set_event_log(&self, enabled: bool) {
        self.inner.borrow_mut().set_event_log(enabled);
    }

    /// Drains pending channel-lifecycle events. See
    /// [`FloodLedger::take_channel_events`].
    pub fn take_channel_events(&self) -> Vec<ChannelEvent> {
        self.inner.borrow_mut().take_channel_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pid(i: usize) -> PathId {
        PathId::from_index(i)
    }

    #[test]
    fn dense_bits_insert_contains_iterate() {
        let mut bits = DenseBits::new();
        assert!(bits.is_empty());
        assert!(!bits.contains(0));
        assert!(bits.insert(3));
        assert!(bits.insert(64));
        assert!(bits.insert(200));
        assert!(!bits.insert(64), "re-insert reports not-fresh");
        assert!(bits.contains(3));
        assert!(bits.contains(64));
        assert!(!bits.contains(4));
        assert_eq!(bits.ones().collect::<Vec<_>>(), vec![3, 64, 200]);
        assert_eq!(bits.len(), 3);
        bits.clear();
        assert!(bits.is_empty());
        assert!(!bits.contains(3));
    }

    #[test]
    fn relay_records_keep_the_first_value() {
        let mut ledger = FloodLedger::new();
        let ch = ledger.open(0, 0);
        assert_eq!(ledger.relay_value(ch, pid(5)), None);
        assert_eq!(ledger.record_relay(ch, pid(5), Value::One), Value::One);
        // A conflicting later record does not overwrite; the caller learns
        // the first value and keeps its own override.
        assert_eq!(ledger.record_relay(ch, pid(5), Value::Zero), Value::One);
        assert_eq!(ledger.relay_value(ch, pid(5)), Some(Value::One));
    }

    #[test]
    fn channels_are_named_and_isolated() {
        let mut ledger = FloodLedger::new();
        let a = ledger.open(0, 0);
        let b = ledger.open(1, 0);
        assert_ne!(a, b);
        assert_eq!(ledger.open(0, 0), a, "same name joins the same channel");
        ledger.record_relay(a, pid(1), Value::One);
        assert_eq!(ledger.relay_value(b, pid(1)), None);
    }

    #[test]
    fn epochs_retire_and_recycle() {
        let mut ledger = FloodLedger::new();
        let e0 = ledger.open(0, 0);
        ledger.record_relay(e0, pid(9), Value::One);
        let _e1 = ledger.open(0, 1);
        // Opening epoch 2 retires epoch 0 and recycles its slot.
        let e2 = ledger.open(0, 2);
        assert_eq!(ledger.live_channels(), 2);
        assert_eq!(
            ledger.relay_value(e2, pid(9)),
            None,
            "recycled channel starts clean"
        );
    }

    #[test]
    fn long_epoch_sequences_keep_storage_bounded() {
        // Regression: a multi-phase algorithm restarts its flood once per
        // phase, opening one epoch each time. Retirement must keep both the
        // live channel count and the allocated slot count bounded — before
        // the shared fabric this was the per-node state that `restart`
        // recycled, and the ledger must not reintroduce the leak.
        let mut ledger = FloodLedger::new();
        for epoch in 0..64 {
            let channel = ledger.open(7, epoch);
            ledger.record_relay(channel, pid(epoch as usize), Value::One);
            assert!(
                ledger.live_channels() <= 2,
                "epoch {epoch}: {} live channels",
                ledger.live_channels()
            );
        }
        assert!(
            ledger.allocated_channels() <= 3,
            "retired slots must be recycled, not re-allocated: {}",
            ledger.allocated_channels()
        );
    }

    #[test]
    fn skipped_epochs_do_not_leak_channels() {
        // A step-indexed consumer can derive non-consecutive epochs (e.g.
        // only every third step floods). The old retirement rule removed
        // exactly `epoch - 2` and leaked everything older; the stale range
        // must be swept instead.
        let mut ledger = FloodLedger::new();
        let _ = ledger.open(0, 0);
        let _ = ledger.open(0, 3);
        assert_eq!(
            ledger.live_channels(),
            1,
            "epoch 0 is stale once epoch 3 opens"
        );
        let _ = ledger.open(0, 10);
        let _ = ledger.open(1, 0); // other tags are untouched
        assert_eq!(ledger.live_channels(), 2);
        assert!(ledger.allocated_channels() <= 3);
    }

    #[test]
    fn keyed_records_roundtrip() {
        let mut ledger = FloodLedger::new();
        let ch = ledger.open(1, 0);
        let key: ReportKey = report_key(n(2), pid(4), n(0), pid(1));
        assert!(ledger.keyed_record(ch, &key).is_none());
        let record = ReportRecord {
            valid: true,
            value: Value::Zero,
            relay: pid(7),
            relay_members_low: 0b101,
            observed: n(0),
            observed_path: pid(1),
        };
        let index = ledger.insert_keyed(ch, key, record);
        let (found_index, found) = ledger.keyed_record(ch, &key).unwrap();
        assert_eq!(found_index, index);
        assert!(found.valid);
        assert_eq!(found.value, Value::Zero);
        assert_eq!(found.relay, pid(7));
        assert_eq!(ledger.record(ch, index).observed, n(0));
    }

    #[test]
    fn slot_cache_hits_and_verifies() {
        let mut ledger = FloodLedger::new();
        let ch = ledger.open(1, 0);
        let key_a = report_key(n(1), pid(2), n(0), pid(1));
        let key_b = report_key(n(3), pid(2), n(0), pid(1));
        let record = ReportRecord {
            valid: true,
            value: Value::One,
            relay: pid(5),
            relay_members_low: 0b10,
            observed: n(0),
            observed_path: pid(1),
        };
        let index = ledger.insert_keyed(ch, key_a, record);
        // First receiver fills slot 7 for generation 3.
        let first = ledger.report_lookup_at_slot(ch, 7, 3, &key_a).unwrap();
        assert_eq!(first.index, index);
        assert_eq!(first.relay, pid(5));
        assert_eq!(first.relay_members_low, 0b10);
        // Same slot, same generation, same key: cache hit.
        assert_eq!(
            ledger
                .report_lookup_at_slot(ch, 7, 3, &key_a)
                .unwrap()
                .index,
            index
        );
        // A colliding slot with a different key must not be trusted.
        assert!(ledger.report_lookup_at_slot(ch, 7, 3, &key_b).is_none());
        // Generation 0 bypasses the cache entirely.
        assert_eq!(
            ledger
                .report_lookup_at_slot(ch, 7, 0, &key_a)
                .unwrap()
                .index,
            index
        );
    }

    #[test]
    fn relay_contains_uses_the_memoized_word() {
        let lookup = ReportLookup {
            index: 0,
            valid: true,
            value: Value::One,
            relay: pid(5),
            relay_members_low: (1 << 3) | (1 << 40),
        };
        assert!(lookup.relay_contains(n(3), || unreachable!()));
        assert!(lookup.relay_contains(n(40), || unreachable!()));
        assert!(!lookup.relay_contains(n(4), || unreachable!()));
        // Indices >= 64 fall back to the caller's exact test.
        assert!(lookup.relay_contains(n(70), || true));
        assert!(!lookup.relay_contains(n(70), || false));
    }

    #[test]
    fn report_keys_pack_uniquely() {
        let a = report_key(n(1), pid(2), n(3), pid(4));
        let b = report_key(n(2), pid(1), n(3), pid(4));
        let c = report_key(n(1), pid(2), n(4), pid(3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, report_key(n(1), pid(2), n(3), pid(4)));
    }

    #[test]
    fn pair_path_memo_shares_plans() {
        let mut ledger = FloodLedger::new();
        assert!(ledger.pair_paths(n(0), n(1)).is_none());
        let plan = vec![Path::from_nodes([n(0), n(2), n(1)])];
        let shared = ledger.set_pair_paths(n(0), n(1), plan.clone());
        assert_eq!(*shared, plan);
        assert_eq!(*ledger.pair_paths(n(0), n(1)).unwrap(), plan);
    }

    #[test]
    fn sessions_isolate_instances_and_stay_bounded() {
        // A chained repeated-consensus run begins one session per instance.
        // Each instance re-derives logical epoch 0 for its flood tags; the
        // session base must keep the names distinct, keep the previous
        // instance's channel live (its tail is still draining), and retire
        // everything two instances back.
        let mut ledger = FloodLedger::new();
        let mut previous = ledger.open(3, 0);
        ledger.record_relay(previous, pid(1), Value::One);
        for instance in 1..500 {
            ledger.begin_session();
            let current = ledger.open(3, 0);
            assert_ne!(
                current, previous,
                "instance {instance} joined a stale channel"
            );
            assert_eq!(
                ledger.relay_value(current, pid(1)),
                None,
                "instance {instance} sees the previous instance's records"
            );
            ledger.record_relay(current, pid(1), Value::One);
            assert!(
                ledger.live_channels() <= 2,
                "instance {instance} leaks channels"
            );
            assert!(ledger.max_live_channels_per_tag() <= 2);
            previous = current;
        }
        assert!(
            ledger.allocated_channels() <= 3,
            "retired instance channels must recycle slots: {}",
            ledger.allocated_channels()
        );
        assert_eq!(ledger.live_tag_count(), 1);
    }

    #[test]
    fn sessions_clear_multi_epoch_instances() {
        // An instance that advances several logical epochs itself (Algorithm
        // 1 restarts once per candidate fault set) must still hand the next
        // session a base above its peak, and per-tag liveness stays bounded.
        let mut ledger = FloodLedger::new();
        for _ in 0..50 {
            for epoch in 0..5 {
                let _ = ledger.open(7, epoch);
                let _ = ledger.open(8, epoch);
            }
            assert!(ledger.max_live_channels_per_tag() <= 2);
            ledger.begin_session();
        }
        assert_eq!(ledger.live_tag_count(), 2);
        assert!(ledger.allocated_channels() <= 6);
    }

    #[test]
    fn session_retire_through_shifts_with_the_base() {
        let mut ledger = FloodLedger::new();
        let _ = ledger.open(0, 0);
        ledger.begin_session();
        let _ = ledger.open(0, 0);
        // Logical retirement in the new session must not miss the previous
        // session's channel once explicitly asked to sweep it.
        ledger.retire_through(0, 0);
        assert_eq!(ledger.live_channels(), 0);
    }

    #[test]
    fn shared_handle_is_one_ledger() {
        let shared = SharedFloodLedger::new();
        let clone = shared.clone();
        let ch = shared.open(0, 0);
        assert_eq!(clone.record_relay(ch, pid(3), Value::One), Value::One);
        assert_eq!(shared.relay_value(ch, pid(3)), Some(Value::One));
    }
}
