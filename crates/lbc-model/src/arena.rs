//! Path interning: arena-backed representation of the `Π` path annotations
//! carried by flooded messages.
//!
//! Path-annotated flooding (Algorithms 1–3 of the paper) generates up to
//! `n!`-many simple-path annotations, and every hop of every flood used to
//! clone a `Vec<NodeId>`-backed [`Path`] into map keys. The [`PathArena`]
//! replaces those clones with interning: paths form a prefix trie of
//! `(parent, last)` entries, a path is identified by a copyable `u32`
//! [`PathId`], and `extended` (the paper's `Π‑u` concatenation — the single
//! hottest operation of the flood engine) is a hash-map lookup instead of a
//! `Vec` clone. Memory is bounded by the number of *distinct simple path
//! prefixes* that actually occur in an execution, not by the number of
//! messages carrying them.
//!
//! Each entry memoizes its member set as a [`NodeSet`] bitset, so
//! [`PathArena::contains`] (flooding rule (iii)) and [`PathArena::excludes`]
//! (step (b)/(c) exclusion checks) are word-level bit operations rather than
//! linear scans.
//!
//! # Example
//!
//! ```
//! use lbc_model::{NodeId, NodeSet, Path, PathArena, PathId};
//!
//! let mut arena = PathArena::new();
//! let a = arena.extended(PathId::EMPTY, NodeId::new(0));
//! let ab = arena.extended(a, NodeId::new(1));
//! assert_eq!(arena.len(ab), 2);
//! assert!(arena.contains(ab, NodeId::new(0)));
//! assert_eq!(arena.resolve(ab), Path::from_nodes([NodeId::new(0), NodeId::new(1)]));
//! // Re-extending the same prefix yields the same id: no allocation.
//! assert_eq!(arena.extended(a, NodeId::new(1)), ab);
//! ```

use std::cell::{Ref, RefCell, RefMut};
use std::fmt;
use std::rc::Rc;

use crate::fx::FxHashMap;
use crate::{NodeId, NodeSet, Path};

/// Identifier of an interned path within a [`PathArena`].
///
/// A `PathId` is a copyable `u32`: messages carry it instead of a cloned
/// node vector, and flood-state maps key by it. Ids are only meaningful
/// relative to the arena that created them (one arena per simulated
/// execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathId(u32);

impl PathId {
    /// The empty path `⊥` (interned in every arena as entry 0).
    pub const EMPTY: PathId = PathId(0);

    /// The dense arena index of this id.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense index previously obtained via
    /// [`PathId::index`] — used by the flood ledger's bitset state, which
    /// stores path ids as raw bit positions. Only meaningful for indices
    /// that came from the same arena.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit a `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PathId(u32::try_from(index).expect("arena indices fit u32"))
    }

    /// Whether this is the empty path `⊥`.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    parent: PathId,
    /// Last node of the path (unused sentinel value for the empty entry).
    last: NodeId,
    /// First node of the path (propagated from the root of the trie branch).
    first: NodeId,
    len: u32,
    /// Memoized member bitset: every node on the path.
    members: NodeSet,
    /// Whether the path visits no node twice.
    simple: bool,
}

/// A prefix-trie arena interning node paths.
///
/// See the [module documentation](self) for the design rationale.
#[derive(Debug)]
pub struct PathArena {
    entries: Vec<Entry>,
    /// `(parent id, appended node) → child id`.
    children: FxHashMap<(u32, usize), u32>,
    /// Per-entry graph-validity memo (0 = unknown, 1 = valid, 2 = invalid),
    /// written by [`PathArena::set_path_validity`]. Validity is with respect
    /// to the single communication graph of the execution that owns the
    /// arena — the invariant every current caller upholds (one arena per
    /// simulated run) — and it is shared by all nodes, so each distinct
    /// path prefix is validated once per execution, not once per node.
    validity: Vec<u8>,
}

impl Default for PathArena {
    fn default() -> Self {
        PathArena::new()
    }
}

impl PathArena {
    /// Creates an arena containing only the empty path `⊥`.
    #[must_use]
    pub fn new() -> Self {
        PathArena {
            entries: vec![Entry {
                parent: PathId::EMPTY,
                last: NodeId::new(usize::MAX),
                first: NodeId::new(usize::MAX),
                len: 0,
                members: NodeSet::new(),
                simple: true,
            }],
            children: FxHashMap::default(),
            validity: vec![1], // ⊥ is a path of every graph
        }
    }

    #[inline]
    fn entry(&self, id: PathId) -> &Entry {
        &self.entries[id.index()]
    }

    /// Number of interned entries, including the empty path.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Interns `Π‑node`: the path `id` with `node` appended.
    ///
    /// O(1) when the extension was seen before (one hash lookup); on first
    /// sight it allocates a single trie entry whose member bitset is the
    /// parent's plus one bit.
    pub fn extended(&mut self, id: PathId, node: NodeId) -> PathId {
        let key = (id.0, node.index());
        if let Some(&child) = self.children.get(&key) {
            return PathId(child);
        }
        let parent_entry = self.entry(id);
        let first = if parent_entry.len == 0 {
            node
        } else {
            parent_entry.first
        };
        let simple = parent_entry.simple && !parent_entry.members.contains(node);
        let mut members = parent_entry.members.clone();
        members.insert(node);
        let len = parent_entry.len + 1;
        let child = u32::try_from(self.entries.len()).expect("arena overflow: > u32::MAX paths");
        self.entries.push(Entry {
            parent: id,
            last: node,
            first,
            len,
            members,
            simple,
        });
        self.validity.push(0);
        self.children.insert(key, child);
        PathId(child)
    }

    /// Interns a path given as a node slice.
    pub fn intern_slice(&mut self, nodes: &[NodeId]) -> PathId {
        let mut id = PathId::EMPTY;
        for &node in nodes {
            id = self.extended(id, node);
        }
        id
    }

    /// Interns a [`Path`].
    pub fn intern(&mut self, path: &Path) -> PathId {
        self.intern_slice(path.nodes())
    }

    /// Looks up the extension `Π‑node` without interning it; `None` if that
    /// extension was never interned.
    #[must_use]
    pub fn find_child(&self, id: PathId, node: NodeId) -> Option<PathId> {
        self.children
            .get(&(id.0, node.index()))
            .map(|&child| PathId(child))
    }

    /// Looks up a path without interning it; `None` if never interned.
    #[must_use]
    pub fn find_slice(&self, nodes: &[NodeId]) -> Option<PathId> {
        let mut id = PathId::EMPTY;
        for &node in nodes {
            id = PathId(*self.children.get(&(id.0, node.index()))?);
        }
        Some(id)
    }

    /// Looks up a [`Path`] without interning it.
    #[must_use]
    pub fn find(&self, path: &Path) -> Option<PathId> {
        self.find_slice(path.nodes())
    }

    /// Number of nodes on the path.
    #[must_use]
    pub fn len(&self, id: PathId) -> usize {
        self.entry(id).len as usize
    }

    /// Whether `id` is the empty path `⊥`.
    #[must_use]
    pub fn is_empty(&self, id: PathId) -> bool {
        id.is_empty()
    }

    /// First node of the path, if any.
    #[must_use]
    pub fn first(&self, id: PathId) -> Option<NodeId> {
        let entry = self.entry(id);
        (entry.len > 0).then_some(entry.first)
    }

    /// Last node of the path, if any.
    #[must_use]
    pub fn last(&self, id: PathId) -> Option<NodeId> {
        let entry = self.entry(id);
        (entry.len > 0).then_some(entry.last)
    }

    /// The parent prefix and last node, or `None` for the empty path.
    ///
    /// Walking `step` repeatedly visits the path's nodes from last to first.
    #[must_use]
    pub fn step(&self, id: PathId) -> Option<(PathId, NodeId)> {
        let entry = self.entry(id);
        (entry.len > 0).then_some((entry.parent, entry.last))
    }

    /// Whether `node` appears anywhere on the path (flooding rule (iii)).
    /// O(1) via the memoized member bitset.
    #[inline]
    #[must_use]
    pub fn contains(&self, id: PathId, node: NodeId) -> bool {
        self.entry(id).members.contains(node)
    }

    /// The memoized member set of the path.
    #[must_use]
    pub fn members(&self, id: PathId) -> &NodeSet {
        &self.entry(id).members
    }

    /// Whether the path visits no node more than once.
    #[must_use]
    pub fn is_simple(&self, id: PathId) -> bool {
        self.entry(id).simple
    }

    /// Whether the path *excludes* the node set `x`: none of its internal
    /// nodes belongs to `x` (endpoints may). Word-level bitset check against
    /// the memoized member set for simple paths; non-simple paths (where an
    /// endpoint value may also occur internally) fall back to an exact walk.
    #[must_use]
    pub fn excludes(&self, id: PathId, x: &NodeSet) -> bool {
        let entry = self.entry(id);
        if entry.len <= 2 {
            return true;
        }
        if !entry.simple {
            // Internal positions are everything but the first and last hop.
            let mut cursor = entry.parent; // skip the last node
            while let Some((parent, node)) = self.step(cursor) {
                if parent.is_empty() {
                    break; // `node` is the first node: an endpoint
                }
                if x.contains(node) {
                    return false;
                }
                cursor = parent;
            }
            return true;
        }
        let members = entry.members.as_words();
        let excluded = x.as_words();
        let mut overlap_within_endpoints = true;
        for (word_index, (m, e)) in members.iter().zip(excluded.iter()).enumerate() {
            let mut hits = m & e;
            while hits != 0 {
                let bit = hits.trailing_zeros() as usize;
                hits &= hits - 1;
                let node = NodeId::new(word_index * 64 + bit);
                if node != entry.first && node != entry.last {
                    overlap_within_endpoints = false;
                }
            }
            if !overlap_within_endpoints {
                return false;
            }
        }
        true
    }

    /// The memoized graph-validity of this entry, if recorded: whether the
    /// path is a path of the execution's communication graph (see the
    /// `validity` field for the single-graph invariant).
    #[inline]
    #[must_use]
    pub fn path_validity(&self, id: PathId) -> Option<bool> {
        match self.validity[id.index()] {
            1 => Some(true),
            2 => Some(false),
            _ => None,
        }
    }

    /// Records the graph-validity of this entry.
    #[inline]
    pub fn set_path_validity(&mut self, id: PathId, valid: bool) {
        self.validity[id.index()] = if valid { 1 } else { 2 };
    }

    /// Whether the *extended* path `id‑w` (for any `w` not on `id`) would
    /// exclude `x`: no node of `id` except its first may belong to `x`.
    ///
    /// This is the exclusion test the flood engine runs on stored relay
    /// paths — the full received path is `relay‑me`, whose internal nodes
    /// are exactly the relay's nodes minus the relay's first node.
    #[must_use]
    pub fn tail_excludes(&self, id: PathId, x: &NodeSet) -> bool {
        let entry = self.entry(id);
        if entry.len <= 1 {
            return true;
        }
        if !entry.simple {
            // Exact walk: every position except position 0 must avoid `x`.
            let mut cursor = id;
            while let Some((parent, node)) = self.step(cursor) {
                if parent.is_empty() {
                    break; // position 0: the exempt head endpoint
                }
                if x.contains(node) {
                    return false;
                }
                cursor = parent;
            }
            return true;
        }
        let members = entry.members.as_words();
        let excluded = x.as_words();
        for (word_index, (m, e)) in members.iter().zip(excluded.iter()).enumerate() {
            let mut hits = m & e;
            while hits != 0 {
                let bit = hits.trailing_zeros() as usize;
                hits &= hits - 1;
                if NodeId::new(word_index * 64 + bit) != entry.first {
                    return false;
                }
            }
        }
        true
    }

    /// Compares two interned paths by their node sequences in forward
    /// lexicographic order (the order `Path`'s derived `Ord` uses), without
    /// materializing either sequence.
    ///
    /// The trie stores parent pointers, i.e. sequences in reverse; forward
    /// comparison recurses to the common-length prefixes first and breaks
    /// ties by length. Cost is `O(len)` per call with no allocation — this is
    /// what lets `overheard_ids` sort without building a `Vec<NodeId>` key
    /// per entry.
    #[must_use]
    pub fn cmp_nodes(&self, a: PathId, b: PathId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let (len_a, len_b) = (self.len(a), self.len(b));
        let common = len_a.min(len_b);
        let mut ta = a;
        for _ in 0..len_a - common {
            ta = self.entry(ta).parent;
        }
        let mut tb = b;
        for _ in 0..len_b - common {
            tb = self.entry(tb).parent;
        }
        self.cmp_equal_len(ta, tb).then(len_a.cmp(&len_b))
    }

    /// Forward lexicographic comparison of two paths of equal length.
    /// Prefix sharing makes equal ids the recursion cutoff: two distinct ids
    /// of the same length differ somewhere, and the deepest shared prefix is
    /// literally the same trie entry.
    fn cmp_equal_len(&self, a: PathId, b: PathId) -> std::cmp::Ordering {
        if a == b {
            return std::cmp::Ordering::Equal;
        }
        let entry_a = self.entry(a);
        let entry_b = self.entry(b);
        self.cmp_equal_len(entry_a.parent, entry_b.parent)
            .then(entry_a.last.cmp(&entry_b.last))
    }

    /// Writes the path's nodes, in order, into `out` (clearing it first).
    pub fn write_nodes(&self, id: PathId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut cursor = id;
        while let Some((parent, last)) = self.step(cursor) {
            out.push(last);
            cursor = parent;
        }
        out.reverse();
    }

    /// The path's nodes, in order.
    #[must_use]
    pub fn nodes(&self, id: PathId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len(id));
        self.write_nodes(id, &mut out);
        out
    }

    /// Resolves the id back into an owned [`Path`].
    #[must_use]
    pub fn resolve(&self, id: PathId) -> Path {
        Path::from_nodes(self.nodes(id))
    }
}

/// A clonable handle to a [`PathArena`] shared by every node of a simulated
/// execution.
///
/// The simulator owns one `SharedPathArena` per run and hands it to protocol
/// hooks through the node context; message `PathId`s are resolved against it
/// on every side of a link. Interior mutability (`Rc<RefCell<…>>`) is used
/// because interning happens while many flooders hold the handle; the
/// simulator is single-threaded by construction.
#[derive(Debug, Clone, Default)]
pub struct SharedPathArena {
    inner: Rc<RefCell<PathArena>>,
}

impl SharedPathArena {
    /// Creates a fresh arena containing only the empty path.
    #[must_use]
    pub fn new() -> Self {
        SharedPathArena::default()
    }

    /// Immutable access to the underlying arena.
    ///
    /// # Panics
    ///
    /// Panics if the arena is currently mutably borrowed.
    #[must_use]
    pub fn borrow(&self) -> Ref<'_, PathArena> {
        self.inner.borrow()
    }

    /// Mutable access to the underlying arena.
    ///
    /// # Panics
    ///
    /// Panics if the arena is currently borrowed.
    #[must_use]
    pub fn borrow_mut(&self) -> RefMut<'_, PathArena> {
        self.inner.borrow_mut()
    }

    /// Interns `Π‑node`. See [`PathArena::extended`].
    pub fn extended(&self, id: PathId, node: NodeId) -> PathId {
        self.inner.borrow_mut().extended(id, node)
    }

    /// Interns a [`Path`]. See [`PathArena::intern`].
    pub fn intern(&self, path: &Path) -> PathId {
        self.inner.borrow_mut().intern(path)
    }

    /// Looks up a [`Path`] without interning. See [`PathArena::find`].
    #[must_use]
    pub fn find(&self, path: &Path) -> Option<PathId> {
        self.inner.borrow().find(path)
    }

    /// Resolves an id into an owned [`Path`]. See [`PathArena::resolve`].
    #[must_use]
    pub fn resolve(&self, id: PathId) -> Path {
        self.inner.borrow().resolve(id)
    }

    /// Path length. See [`PathArena::len`].
    #[must_use]
    pub fn len(&self, id: PathId) -> usize {
        self.inner.borrow().len(id)
    }

    /// First node. See [`PathArena::first`].
    #[must_use]
    pub fn first(&self, id: PathId) -> Option<NodeId> {
        self.inner.borrow().first(id)
    }

    /// Last node. See [`PathArena::last`].
    #[must_use]
    pub fn last(&self, id: PathId) -> Option<NodeId> {
        self.inner.borrow().last(id)
    }

    /// Membership test. See [`PathArena::contains`].
    #[must_use]
    pub fn contains(&self, id: PathId, node: NodeId) -> bool {
        self.inner.borrow().contains(id, node)
    }

    /// Exclusion test. See [`PathArena::excludes`].
    #[must_use]
    pub fn excludes(&self, id: PathId, x: &NodeSet) -> bool {
        self.inner.borrow().excludes(id, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn p(ids: &[usize]) -> Path {
        Path::from_nodes(ids.iter().map(|&i| n(i)))
    }

    #[test]
    fn empty_path_facts() {
        let arena = PathArena::new();
        assert_eq!(arena.len(PathId::EMPTY), 0);
        assert!(arena.is_empty(PathId::EMPTY));
        assert_eq!(arena.first(PathId::EMPTY), None);
        assert_eq!(arena.last(PathId::EMPTY), None);
        assert_eq!(arena.step(PathId::EMPTY), None);
        assert!(arena.is_simple(PathId::EMPTY));
        assert_eq!(arena.resolve(PathId::EMPTY), Path::empty());
        assert_eq!(arena.entry_count(), 1);
    }

    #[test]
    fn intern_resolve_roundtrip_preserves_order() {
        let mut arena = PathArena::new();
        let path = p(&[3, 1, 4, 1, 5]);
        let id = arena.intern(&path);
        assert_eq!(arena.resolve(id), path);
        assert_eq!(arena.len(id), 5);
        assert_eq!(arena.first(id), Some(n(3)));
        assert_eq!(arena.last(id), Some(n(5)));
        assert!(!arena.is_simple(id)); // node 1 repeats
    }

    #[test]
    fn interning_is_idempotent_and_shares_prefixes() {
        let mut arena = PathArena::new();
        let a = arena.intern(&p(&[0, 1, 2]));
        let b = arena.intern(&p(&[0, 1, 2]));
        assert_eq!(a, b);
        let before = arena.entry_count();
        // A sibling path shares the [0, 1] prefix: exactly one new entry.
        let c = arena.intern(&p(&[0, 1, 3]));
        assert_ne!(a, c);
        assert_eq!(arena.entry_count(), before + 1);
    }

    #[test]
    fn find_does_not_allocate() {
        let mut arena = PathArena::new();
        let id = arena.intern(&p(&[2, 4]));
        let before = arena.entry_count();
        assert_eq!(arena.find(&p(&[2, 4])), Some(id));
        assert_eq!(arena.find(&p(&[2, 5])), None);
        assert_eq!(arena.find(&Path::empty()), Some(PathId::EMPTY));
        assert_eq!(arena.entry_count(), before);
    }

    #[test]
    fn contains_uses_memoized_members() {
        let mut arena = PathArena::new();
        let id = arena.intern(&p(&[0, 7, 130]));
        assert!(arena.contains(id, n(0)));
        assert!(arena.contains(id, n(7)));
        assert!(arena.contains(id, n(130)));
        assert!(!arena.contains(id, n(1)));
        assert!(!arena.contains(PathId::EMPTY, n(0)));
        assert_eq!(arena.members(id).len(), 3);
    }

    #[test]
    fn excludes_ignores_endpoints() {
        let mut arena = PathArena::new();
        let id = arena.intern(&p(&[0, 1, 2, 3]));
        let ends: NodeSet = [n(0), n(3)].into_iter().collect();
        let mid: NodeSet = [n(2)].into_iter().collect();
        assert!(arena.excludes(id, &ends));
        assert!(!arena.excludes(id, &mid));
        // Short paths exclude everything.
        let short = arena.intern(&p(&[0, 1]));
        assert!(arena.excludes(short, &NodeSet::full(8)));
        assert!(arena.excludes(PathId::EMPTY, &NodeSet::full(8)));
    }

    #[test]
    fn excludes_agrees_with_path_excludes() {
        let mut arena = PathArena::new();
        for nodes in [&[0usize, 1, 2][..], &[5, 64, 2, 130], &[1], &[], &[9, 9, 9]] {
            let path = p(nodes);
            let id = arena.intern(&path);
            for excluded in [&[0usize][..], &[1, 64], &[130], &[2, 9], &[]] {
                let x: NodeSet = excluded.iter().map(|&i| n(i)).collect();
                assert_eq!(
                    arena.excludes(id, &x),
                    path.excludes(&x),
                    "path {path} excluding {x}"
                );
            }
        }
    }

    #[test]
    fn find_child_is_a_read_only_extended() {
        let mut arena = PathArena::new();
        let a = arena.extended(PathId::EMPTY, n(1));
        let ab = arena.extended(a, n(2));
        let before = arena.entry_count();
        assert_eq!(arena.find_child(a, n(2)), Some(ab));
        assert_eq!(arena.find_child(a, n(3)), None);
        assert_eq!(arena.find_child(PathId::EMPTY, n(1)), Some(a));
        assert_eq!(arena.entry_count(), before);
    }

    #[test]
    fn cmp_nodes_matches_resolved_path_order() {
        let mut arena = PathArena::new();
        let samples = [
            &[][..],
            &[0],
            &[1],
            &[0, 1],
            &[0, 2],
            &[0, 1, 2],
            &[0, 1, 3],
            &[2, 0],
            &[2, 0, 1, 3],
            &[9, 9, 9],
        ];
        let ids: Vec<PathId> = samples.iter().map(|s| arena.intern(&p(s))).collect();
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                assert_eq!(
                    arena.cmp_nodes(a, b),
                    arena.resolve(a).cmp(&arena.resolve(b)),
                    "cmp_nodes({:?}, {:?})",
                    samples[i],
                    samples[j]
                );
            }
        }
    }

    #[test]
    fn extended_walks_the_trie() {
        let mut arena = PathArena::new();
        let a = arena.extended(PathId::EMPTY, n(4));
        let ab = arena.extended(a, n(2));
        assert_eq!(arena.step(ab), Some((a, n(2))));
        assert_eq!(arena.step(a), Some((PathId::EMPTY, n(4))));
        assert_eq!(arena.nodes(ab), vec![n(4), n(2)]);
    }

    #[test]
    fn shared_handle_interns_into_one_arena() {
        let shared = SharedPathArena::new();
        let clone = shared.clone();
        let id = shared.intern(&p(&[1, 2]));
        assert_eq!(clone.find(&p(&[1, 2])), Some(id));
        assert_eq!(clone.resolve(id), p(&[1, 2]));
        let ext = clone.extended(id, n(3));
        assert_eq!(shared.len(ext), 3);
        assert_eq!(shared.first(ext), Some(n(1)));
        assert_eq!(shared.last(ext), Some(n(3)));
        assert!(shared.contains(ext, n(2)));
        assert!(shared.excludes(ext, &NodeSet::singleton(n(1))));
    }
}
