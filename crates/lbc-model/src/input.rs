//! Binary input assignments for consensus executions.

use std::fmt;

use crate::{NodeId, NodeSet, Value};

/// The binary inputs of all `n` nodes in an execution.
///
/// Stored densely (index `i` is the input of node `i`), which matches the
/// dense [`NodeId`] space used throughout the workspace.
///
/// # Example
///
/// ```
/// use lbc_model::{InputAssignment, NodeId, Value};
///
/// let inputs = InputAssignment::from_bits(5, 0b10110);
/// assert_eq!(inputs.get(NodeId::new(0)), Value::Zero);
/// assert_eq!(inputs.get(NodeId::new(1)), Value::One);
/// assert_eq!(inputs.ones().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InputAssignment {
    values: Vec<Value>,
}

impl InputAssignment {
    /// Creates an assignment where every node has input `value`.
    #[must_use]
    pub fn uniform(n: usize, value: Value) -> Self {
        InputAssignment {
            values: vec![value; n],
        }
    }

    /// Creates an assignment where every node has input `0`.
    #[must_use]
    pub fn all_zero(n: usize) -> Self {
        Self::uniform(n, Value::Zero)
    }

    /// Creates an assignment where every node has input `1`.
    #[must_use]
    pub fn all_one(n: usize) -> Self {
        Self::uniform(n, Value::One)
    }

    /// Creates an assignment from an explicit vector of values.
    #[must_use]
    pub fn from_values(values: Vec<Value>) -> Self {
        InputAssignment { values }
    }

    /// Creates an assignment of `n` nodes from the low `n` bits of `bits`
    /// (bit `i` is the input of node `i`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn from_bits(n: usize, bits: u64) -> Self {
        assert!(n <= 64, "from_bits supports at most 64 nodes, got {n}");
        let values = (0..n).map(|i| Value::from((bits >> i) & 1 == 1)).collect();
        InputAssignment { values }
    }

    /// Creates an assignment where exactly the nodes in `ones` have input `1`.
    #[must_use]
    pub fn with_ones(n: usize, ones: &NodeSet) -> Self {
        let values = (0..n)
            .map(|i| Value::from(ones.contains(NodeId::new(i))))
            .collect();
        InputAssignment { values }
    }

    /// Number of nodes covered by the assignment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The input of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Value {
        self.values[node.index()]
    }

    /// Sets the input of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, value: Value) {
        self.values[node.index()] = value;
    }

    /// Iterates over `(node, input)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId::new(i), v))
    }

    /// The set of nodes whose input is `1`.
    #[must_use]
    pub fn ones(&self) -> NodeSet {
        self.iter()
            .filter(|&(_, v)| v == Value::One)
            .map(|(node, _)| node)
            .collect()
    }

    /// The set of nodes whose input is `0`.
    #[must_use]
    pub fn zeros(&self) -> NodeSet {
        self.iter()
            .filter(|&(_, v)| v == Value::Zero)
            .map(|(node, _)| node)
            .collect()
    }

    /// The values held by the given set of nodes.
    #[must_use]
    pub fn values_of(&self, nodes: &NodeSet) -> Vec<Value> {
        nodes.iter().map(|node| self.get(node)).collect()
    }

    /// Whether all nodes outside `exclude` hold the same input; returns that
    /// value if so.
    #[must_use]
    pub fn unanimous_excluding(&self, exclude: &NodeSet) -> Option<Value> {
        let mut common: Option<Value> = None;
        for (node, value) in self.iter() {
            if exclude.contains(node) {
                continue;
            }
            match common {
                None => common = Some(value),
                Some(c) if c != value => return None,
                Some(_) => {}
            }
        }
        common
    }

    /// The underlying dense value vector.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for InputAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for value in &self.values {
            write!(f, "{value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uniform_assignments() {
        let z = InputAssignment::all_zero(4);
        let o = InputAssignment::all_one(4);
        assert_eq!(z.ones().len(), 0);
        assert_eq!(o.ones().len(), 4);
        assert_eq!(z.get(n(2)), Value::Zero);
        assert_eq!(o.get(n(2)), Value::One);
    }

    #[test]
    fn from_bits_maps_bit_i_to_node_i() {
        let a = InputAssignment::from_bits(4, 0b1010);
        assert_eq!(a.get(n(0)), Value::Zero);
        assert_eq!(a.get(n(1)), Value::One);
        assert_eq!(a.get(n(2)), Value::Zero);
        assert_eq!(a.get(n(3)), Value::One);
        assert_eq!(a.to_string(), "0101");
    }

    #[test]
    #[should_panic(expected = "at most 64 nodes")]
    fn from_bits_rejects_large_n() {
        let _ = InputAssignment::from_bits(65, 0);
    }

    #[test]
    fn with_ones_sets_exactly_those_nodes() {
        let ones: NodeSet = [n(1), n(3)].into_iter().collect();
        let a = InputAssignment::with_ones(5, &ones);
        assert_eq!(a.ones(), ones);
        assert_eq!(a.zeros().len(), 3);
    }

    #[test]
    fn set_and_get() {
        let mut a = InputAssignment::all_zero(3);
        a.set(n(1), Value::One);
        assert_eq!(a.get(n(1)), Value::One);
        assert_eq!(a.ones(), NodeSet::singleton(n(1)));
    }

    #[test]
    fn unanimous_excluding_faulty() {
        let mut a = InputAssignment::all_one(4);
        a.set(n(2), Value::Zero);
        let faulty = NodeSet::singleton(n(2));
        assert_eq!(a.unanimous_excluding(&faulty), Some(Value::One));
        assert_eq!(a.unanimous_excluding(&NodeSet::new()), None);
        // Excluding everything yields no witness value.
        assert_eq!(a.unanimous_excluding(&NodeSet::full(4)), None);
    }

    #[test]
    fn values_of_projects_in_order() {
        let a = InputAssignment::from_bits(4, 0b0110);
        let s: NodeSet = [n(0), n(1), n(2)].into_iter().collect();
        assert_eq!(a.values_of(&s), vec![Value::Zero, Value::One, Value::One]);
    }
}
