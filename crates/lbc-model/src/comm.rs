//! Communication models: local broadcast, point-to-point, and the hybrid model.

use std::fmt;

use crate::{NodeId, NodeSet};

/// The communication model that governs how transmissions by *faulty* nodes
/// may differ across neighbors.
///
/// * [`CommModel::LocalBroadcast`] — Sections 4 and 5 of the paper: every
///   message sent by a node is received identically by **all** of its
///   neighbors; no node (faulty or not) can equivocate.
/// * [`CommModel::PointToPoint`] — the classical model (Dolev 1982): a faulty
///   node may send conflicting information to different neighbors.
/// * [`CommModel::Hybrid`] — Section 6: only the listed *equivocating* faulty
///   nodes may send per-neighbor messages; every other node (non-faulty or
///   non-equivocating faulty) is restricted to local broadcast.
///
/// Non-faulty nodes always behave identically under all three models: the
/// model only constrains what an adversary may do.
///
/// # Example
///
/// ```
/// use lbc_model::{CommModel, NodeId, NodeSet};
///
/// let t: NodeSet = [NodeId::new(2)].into_iter().collect();
/// let hybrid = CommModel::Hybrid { equivocators: t };
/// assert!(hybrid.allows_equivocation(NodeId::new(2)));
/// assert!(!hybrid.allows_equivocation(NodeId::new(1)));
/// assert!(CommModel::PointToPoint.allows_equivocation(NodeId::new(1)));
/// assert!(!CommModel::LocalBroadcast.allows_equivocation(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum CommModel {
    /// Local broadcast: all transmissions are overheard identically by every
    /// neighbor of the sender.
    #[default]
    LocalBroadcast,
    /// Classical point-to-point links: faulty nodes may equivocate freely.
    PointToPoint,
    /// Hybrid model: only the nodes in `equivocators` may equivocate; all
    /// other nodes are restricted to local broadcast.
    Hybrid {
        /// The set `T` of (at most `t`) faulty nodes allowed to equivocate.
        equivocators: NodeSet,
    },
}

impl CommModel {
    /// Creates the hybrid model with the given equivocating set.
    ///
    /// `Hybrid` with an empty set behaves exactly like
    /// [`CommModel::LocalBroadcast`], matching the paper's observation that
    /// the hybrid model with `t = 0` *is* the local broadcast model.
    #[must_use]
    pub fn hybrid<I>(equivocators: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        CommModel::Hybrid {
            equivocators: equivocators.into_iter().collect(),
        }
    }

    /// Whether a transmission by `sender` may legally differ across the
    /// sender's neighbors under this model.
    #[must_use]
    pub fn allows_equivocation(&self, sender: NodeId) -> bool {
        match self {
            CommModel::LocalBroadcast => false,
            CommModel::PointToPoint => true,
            CommModel::Hybrid { equivocators } => equivocators.contains(sender),
        }
    }

    /// The set of nodes allowed to equivocate, if the model names one
    /// explicitly (hybrid model only).
    #[must_use]
    pub fn equivocators(&self) -> Option<&NodeSet> {
        match self {
            CommModel::Hybrid { equivocators } => Some(equivocators),
            _ => None,
        }
    }

    /// Whether this model is (equivalent to) the pure local broadcast model.
    #[must_use]
    pub fn is_local_broadcast(&self) -> bool {
        match self {
            CommModel::LocalBroadcast => true,
            CommModel::Hybrid { equivocators } => equivocators.is_empty(),
            CommModel::PointToPoint => false,
        }
    }
}

impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommModel::LocalBroadcast => write!(f, "local broadcast"),
            CommModel::PointToPoint => write!(f, "point-to-point"),
            CommModel::Hybrid { equivocators } => {
                write!(f, "hybrid (equivocators {equivocators})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn local_broadcast_forbids_equivocation_for_everyone() {
        let m = CommModel::LocalBroadcast;
        for i in 0..5 {
            assert!(!m.allows_equivocation(n(i)));
        }
        assert!(m.is_local_broadcast());
        assert_eq!(m.equivocators(), None);
    }

    #[test]
    fn point_to_point_allows_equivocation_for_everyone() {
        let m = CommModel::PointToPoint;
        for i in 0..5 {
            assert!(m.allows_equivocation(n(i)));
        }
        assert!(!m.is_local_broadcast());
    }

    #[test]
    fn hybrid_restricts_equivocation_to_listed_nodes() {
        let m = CommModel::hybrid([n(1), n(4)]);
        assert!(m.allows_equivocation(n(1)));
        assert!(m.allows_equivocation(n(4)));
        assert!(!m.allows_equivocation(n(0)));
        assert_eq!(m.equivocators().unwrap().len(), 2);
    }

    #[test]
    fn hybrid_with_empty_set_reduces_to_local_broadcast() {
        let m = CommModel::hybrid([]);
        assert!(m.is_local_broadcast());
        assert!(!m.allows_equivocation(n(0)));
    }

    #[test]
    fn default_is_local_broadcast() {
        assert_eq!(CommModel::default(), CommModel::LocalBroadcast);
    }

    #[test]
    fn display_strings() {
        assert_eq!(CommModel::LocalBroadcast.to_string(), "local broadcast");
        assert_eq!(CommModel::PointToPoint.to_string(), "point-to-point");
        assert!(CommModel::hybrid([n(3)]).to_string().contains("v3"));
    }
}
