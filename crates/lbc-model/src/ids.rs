//! Node identifiers and synchronous round counters.

use std::fmt;

/// Identifier of a node (vertex) in the communication graph.
///
/// Node identifiers are dense small integers `0..n`, which keeps graph
/// adjacency structures and per-node state vectors index-addressable.
///
/// # Example
///
/// ```
/// use lbc_model::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from its dense index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A synchronous round counter.
///
/// The simulator executes protocols in lock-step rounds; `Round` is a
/// transparent counter used in traces and protocol hooks.
///
/// # Example
///
/// ```
/// use lbc_model::Round;
///
/// let r = Round::new(4);
/// assert_eq!(r.next().value(), 5);
/// assert!(r < r.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// The first round of an execution.
    pub const ZERO: Round = Round(0);

    /// Creates a round counter from its numeric value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Round(value)
    }

    /// Returns the numeric value of this round.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the round that follows this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Round(self.0 + 1)
    }
}

impl From<u64> for Round {
    fn from(value: u64) -> Self {
        Round(value)
    }
}

impl From<Round> for u64 {
    fn from(round: Round) -> Self {
        round.0
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_usize() {
        let id = NodeId::new(17);
        assert_eq!(usize::from(id), 17);
        assert_eq!(NodeId::from(17usize), id);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn node_id_display_is_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(NodeId::new(42).to_string(), "v42");
    }

    #[test]
    fn round_advances() {
        let r = Round::ZERO;
        assert_eq!(r.value(), 0);
        assert_eq!(r.next().value(), 1);
        assert_eq!(r.next().next(), Round::new(2));
    }

    #[test]
    fn round_display() {
        assert_eq!(Round::new(7).to_string(), "round 7");
    }

    #[test]
    fn node_id_json_is_transparent() {
        use crate::json::{FromJson, Json, ToJson};
        let id = NodeId::new(9);
        let json = id.to_json().to_string();
        assert_eq!(json, "9");
        let back = NodeId::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn round_json_is_transparent() {
        use crate::json::{FromJson, Json, ToJson};
        let r = Round::new(3);
        let json = r.to_json().to_string();
        assert_eq!(json, "3");
        let back = Round::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
