//! # lbc-model
//!
//! Shared vocabulary types for the *local broadcast* Byzantine consensus
//! reproduction of Khan, Naqvi and Vaidya (PODC 2019).
//!
//! Every other crate in the workspace builds on the small, dependency-free
//! types defined here:
//!
//! * [`NodeId`] — a node/vertex identifier,
//! * [`Value`] — a binary consensus value,
//! * [`Round`] — a synchronous round counter,
//! * [`Path`] — a sequence of node identifiers as carried inside flooded
//!   messages (the `Π` of Algorithm 1),
//! * [`PathArena`] / [`PathId`] — the path-interning subsystem: paths are
//!   interned into a prefix-trie arena and referenced by copyable `u32` ids,
//!   which is what lets the flood engine avoid per-message `Vec` clones,
//! * [`SharedPathArena`] — the per-execution arena handle threaded through
//!   the simulator,
//! * [`FloodLedger`] / [`SharedFloodLedger`] — the shared flood fabric:
//!   execution-wide broadcast-once records that let every node's flood state
//!   collapse to bitsets over shared indices ([`DenseBits`]),
//! * [`NodeSet`] — an ordered set of nodes (fault sets, cuts, neighborhoods),
//!   backed by a `u64`-word bitset,
//! * [`CommModel`] — the communication model: local broadcast, point-to-point,
//!   or the hybrid model of Section 6 of the paper,
//! * [`Regime`] — the execution regime: lockstep synchronous rounds, or
//!   eventually-fair asynchronous delivery under a deterministic seeded
//!   scheduler ([`AsyncRegime`] / [`SchedulerKind`]),
//! * [`InputAssignment`] — the binary inputs of all nodes,
//! * [`ConsensusOutcome`] — decided outputs plus the correctness verdict
//!   (agreement / validity / termination),
//! * [`fx`] — the FxHash hasher used by the flood engine's hot maps,
//! * [`json`] — a minimal JSON writer/parser used for traces and baselines.
//!
//! # Example
//!
//! ```
//! use lbc_model::{NodeId, Value, Path, CommModel};
//!
//! let a = NodeId::new(0);
//! let b = NodeId::new(1);
//! let path = Path::empty().extended(a).extended(b);
//! assert_eq!(path.len(), 2);
//! assert!(path.contains(a));
//!
//! let model = CommModel::LocalBroadcast;
//! assert!(!model.allows_equivocation(a));
//! assert_eq!(Value::Zero.flipped(), Value::One);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod comm;
mod error;
pub mod fx;
mod ids;
mod input;
pub mod json;
mod ledger;
mod nodeset;
mod outcome;
mod path;
pub mod regime;
mod value;

pub use arena::{PathArena, PathId, SharedPathArena};
pub use comm::CommModel;
pub use error::ModelError;
pub use ids::{NodeId, Round};
pub use input::InputAssignment;
pub use ledger::{
    report_key, ChannelEvent, ChannelId, DenseBits, FloodLedger, ReportKey, ReportLookup,
    ReportRecord, SharedFloodLedger,
};
pub use nodeset::NodeSet;
pub use outcome::{ConsensusOutcome, Verdict};
pub use path::Path;
pub use regime::{AdversarialSchedule, AsyncRegime, Regime, SchedulerKind, MAX_DELAY, MAX_GST};
pub use value::Value;
