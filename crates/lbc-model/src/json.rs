//! A minimal JSON value, writer, and parser.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so the workspace
//! serializes through this small module instead: traces, experiment results,
//! and bench baselines all produce JSON via [`ToJson`] and read it back via
//! [`FromJson`]. Only the JSON subset the workspace emits is supported
//! (no exponent-heavy floats, no unicode escapes beyond `\uXXXX` decoding).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Error produced when parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Types that serialize to a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that deserialize from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts a JSON value back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the value has the wrong shape.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<I>(fields: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("{}: ", Json::Str(key.clone())));
                    value.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                out.push_str(&other.to_string());
            }
        }
    }
}

/// Parses a `u64` that may be a JSON number or (for full 64-bit fidelity) a
/// decimal string — the convention every 64-bit field of the campaign and
/// search schemas uses, since a JSON `f64` number cannot exactly represent
/// integers above `2^53`.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is neither.
pub fn u64_from_number_or_string(value: &Json) -> Result<u64, JsonError> {
    if let Some(number) = value.as_u64() {
        return Ok(number);
    }
    value
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| JsonError {
            message: "expected an unsigned integer (number or decimal string)".to_string(),
        })
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{value}", Json::Str(key.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("non-utf8 string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

// ---- implementations for the model's own vocabulary types ----

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_u64()
            .map(|x| x as usize)
            .ok_or_else(|| JsonError::new("expected a non-negative integer"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::new("expected a non-negative integer"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected a string"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl ToJson for crate::NodeId {
    fn to_json(&self) -> Json {
        Json::Num(self.index() as f64)
    }
}

impl FromJson for crate::NodeId {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(crate::NodeId::new(usize::from_json(value)?))
    }
}

impl ToJson for crate::Round {
    fn to_json(&self) -> Json {
        Json::Num(self.value() as f64)
    }
}

impl FromJson for crate::Round {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(crate::Round::new(u64::from_json(value)?))
    }
}

impl ToJson for crate::Value {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(self.as_u8()))
    }
}

impl FromJson for crate::Value {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_u64() {
            Some(0) => Ok(crate::Value::Zero),
            Some(1) => Ok(crate::Value::One),
            _ => Err(JsonError::new("expected 0 or 1")),
        }
    }
}

impl ToJson for crate::NodeSet {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|node| node.to_json()).collect())
    }
}

impl FromJson for crate::NodeSet {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Vec::<crate::NodeId>::from_json(value)?
            .into_iter()
            .collect())
    }
}

impl ToJson for crate::Path {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|node| node.to_json()).collect())
    }
}

impl FromJson for crate::Path {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Vec::<crate::NodeId>::from_json(value)?
            .into_iter()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let value = Json::object([
            ("name", Json::Str("flood \"engine\"\n".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(2.5)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let text = value.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(2.5));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("items").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let text = "  { \"a\" : [ 1 , { \"b\" : null } ] }  ";
        let value = Json::parse(text).unwrap();
        let a = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = Json::parse("\"\\u0041\\n\"").unwrap();
        assert_eq!(value.as_str(), Some("A\n"));
    }

    #[test]
    fn pretty_output_reparses() {
        let value = Json::object([
            (
                "rows",
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let pretty = value.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn model_types_roundtrip() {
        use crate::{NodeId, NodeSet, Path, Round, Value};
        let id = NodeId::new(9);
        assert_eq!(id.to_json().to_string(), "9");
        assert_eq!(NodeId::from_json(&Json::parse("9").unwrap()).unwrap(), id);

        let round = Round::new(3);
        assert_eq!(round.to_json().to_string(), "3");
        assert_eq!(Round::from_json(&Json::parse("3").unwrap()).unwrap(), round);

        let set: NodeSet = [NodeId::new(0), NodeId::new(4)].into_iter().collect();
        let back = NodeSet::from_json(&Json::parse(&set.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, set);

        let path = Path::from_nodes([NodeId::new(2), NodeId::new(1)]);
        let back = Path::from_json(&Json::parse(&path.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, path);

        assert_eq!(Value::from_json(&Json::Num(1.0)).unwrap(), Value::One);
        assert!(Value::from_json(&Json::Num(7.0)).is_err());
    }
}
