//! The binary consensus value.

use std::fmt;
use std::ops::Not;

/// A binary consensus value, `0` or `1`.
///
/// The paper considers Byzantine consensus for nodes with *binary* inputs;
/// every protocol in this workspace therefore speaks [`Value`].
///
/// The paper's default value — substituted by non-faulty neighbors when a
/// faulty node fails to initiate flooding — is [`Value::One`]
/// (see Algorithm 1, step (a)).
///
/// # Example
///
/// ```
/// use lbc_model::Value;
///
/// assert_eq!(Value::from(true), Value::One);
/// assert_eq!(Value::Zero.flipped(), Value::One);
/// assert_eq!(!Value::One, Value::Zero);
/// assert_eq!(Value::DEFAULT_FLOOD, Value::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The binary value `0`.
    #[default]
    Zero,
    /// The binary value `1`.
    One,
}

impl Value {
    /// The default value a non-faulty neighbor substitutes for a missing
    /// flood initiation, per Algorithm 1 step (a): the message `(1, ⊥)`.
    pub const DEFAULT_FLOOD: Value = Value::One;

    /// Returns the opposite binary value.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
        }
    }

    /// Returns this value as a `bool` (`One` maps to `true`).
    #[must_use]
    pub const fn as_bool(self) -> bool {
        matches!(self, Value::One)
    }

    /// Returns this value as `0u8` or `1u8`.
    #[must_use]
    pub const fn as_u8(self) -> u8 {
        match self {
            Value::Zero => 0,
            Value::One => 1,
        }
    }

    /// Returns the majority value of an iterator of values.
    ///
    /// Ties resolve to [`Value::Zero`], matching phase 3 of the efficient
    /// algorithm (Algorithm 2): "in case of a tie, 0 is chosen as the
    /// majority value". Returns `None` for an empty iterator.
    pub fn majority<I>(values: I) -> Option<Value>
    where
        I: IntoIterator<Item = Value>,
    {
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for v in values {
            match v {
                Value::Zero => zeros += 1,
                Value::One => ones += 1,
            }
        }
        if zeros == 0 && ones == 0 {
            None
        } else if ones > zeros {
            Some(Value::One)
        } else {
            Some(Value::Zero)
        }
    }
}

impl Not for Value {
    type Output = Value;

    fn not(self) -> Self::Output {
        self.flipped()
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl From<Value> for bool {
    fn from(v: Value) -> Self {
        v.as_bool()
    }
}

impl From<Value> for u8 {
    fn from(v: Value) -> Self {
        v.as_u8()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u8())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        assert_eq!(Value::Zero.flipped().flipped(), Value::Zero);
        assert_eq!(Value::One.flipped().flipped(), Value::One);
    }

    #[test]
    fn not_operator_matches_flipped() {
        assert_eq!(!Value::Zero, Value::One);
        assert_eq!(!Value::One, Value::Zero);
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(true), Value::One);
        assert_eq!(Value::from(false), Value::Zero);
        assert!(bool::from(Value::One));
        assert!(!bool::from(Value::Zero));
        assert_eq!(u8::from(Value::One), 1);
        assert_eq!(u8::from(Value::Zero), 0);
    }

    #[test]
    fn default_is_zero_and_default_flood_is_one() {
        assert_eq!(Value::default(), Value::Zero);
        assert_eq!(Value::DEFAULT_FLOOD, Value::One);
    }

    #[test]
    fn majority_breaks_ties_towards_zero() {
        assert_eq!(
            Value::majority([Value::Zero, Value::One]),
            Some(Value::Zero)
        );
        assert_eq!(Value::majority([]), None);
        assert_eq!(
            Value::majority([Value::One, Value::One, Value::Zero]),
            Some(Value::One)
        );
        assert_eq!(
            Value::majority([Value::Zero, Value::Zero, Value::One]),
            Some(Value::Zero)
        );
    }

    #[test]
    fn display_prints_digits() {
        assert_eq!(Value::Zero.to_string(), "0");
        assert_eq!(Value::One.to_string(), "1");
    }
}
