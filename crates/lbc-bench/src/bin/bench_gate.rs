//! Compares a freshly measured bench baseline against the committed one and
//! fails on speedup regressions.
//!
//! ```text
//! bench_gate <committed.json> <fresh.json> [tolerance-percent]
//! ```
//!
//! Only the `speedup_triples` section is gated: absolute nanosecond medians
//! vary wildly across runner hardware, but the naive / per-node / ledger
//! *ratios* on the same machine are stable — a ledger speedup that drops
//! more than the tolerance (default 25%) below the committed value means an
//! engine regression, not a slow runner. A workload that disappears from
//! the fresh measurement also fails (a silently renamed bench would
//! otherwise retire its own gate); new workloads are reported but pass.
//!
//! Run via `scripts/bench_gate.sh`, which measures the fresh baseline
//! first.

use std::fs;
use std::process::ExitCode;

use lbc_model::json::Json;

/// The gated ratio fields of one speedup triple.
const GATED_RATIOS: [&str; 2] = ["ledger_speedup_vs_naive", "ledger_speedup_vs_per_node"];

fn load(path: &str) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    Json::parse(&text).map_err(|err| format!("{path}: {err}"))
}

fn triples(doc: &Json, path: &str) -> Result<Vec<(String, f64, f64)>, String> {
    let entries = doc
        .get("speedup_triples")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing 'speedup_triples' (not a bench baseline?)"))?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        let workload = entry
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: triple missing 'workload'"))?;
        let ratio = |field: &str| {
            entry
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: {workload} missing '{field}'"))
        };
        out.push((
            workload.to_string(),
            ratio(GATED_RATIOS[0])?,
            ratio(GATED_RATIOS[1])?,
        ));
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let (Some(committed_path), Some(fresh_path)) = (args.next(), args.next()) else {
        return Err("usage: bench_gate <committed.json> <fresh.json> [tolerance-percent]".into());
    };
    let tolerance_percent: f64 = match args.next() {
        None => 25.0,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("tolerance must be a number, got '{raw}'"))?,
    };
    let floor = 1.0 - tolerance_percent / 100.0;

    let committed = triples(&load(&committed_path)?, &committed_path)?;
    let fresh = triples(&load(&fresh_path)?, &fresh_path)?;
    if committed.is_empty() {
        return Err(format!("{committed_path}: no speedup triples to gate"));
    }

    let mut ok = true;
    for (workload, base_naive, base_per_node) in &committed {
        let Some((_, fresh_naive, fresh_per_node)) =
            fresh.iter().find(|(name, _, _)| name == workload)
        else {
            eprintln!("GATE FAIL: workload '{workload}' missing from {fresh_path}");
            ok = false;
            continue;
        };
        for (field, base, measured) in [
            (GATED_RATIOS[0], base_naive, fresh_naive),
            (GATED_RATIOS[1], base_per_node, fresh_per_node),
        ] {
            let minimum = base * floor;
            if *measured < minimum {
                eprintln!(
                    "GATE FAIL: {workload} {field} regressed: {measured:.2} < \
                     {minimum:.2} (committed {base:.2} - {tolerance_percent}%)"
                );
                ok = false;
            } else {
                println!(
                    "gate ok: {workload} {field} = {measured:.2} \
                     (committed {base:.2}, floor {minimum:.2})"
                );
            }
        }
    }
    for (workload, _, _) in &fresh {
        if !committed.iter().any(|(name, _, _)| name == workload) {
            println!("gate note: new workload '{workload}' (no committed baseline yet)");
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
