//! Collects the per-benchmark JSON records written by the criterion shim
//! (under `target/lbc-bench/`, or `$LBC_BENCH_OUT`) into a single baseline
//! file (first CLI argument; default `BENCH_baseline.json`) at the
//! workspace root, computing the interned-vs-naive speedup for every
//! `*_interned` / `*_naive` pair and a naive / per-node / ledger speedup
//! triple for every workload that also has a `*_ledger` variant.
//!
//! Run via `scripts/bench_baseline.sh [out.json]`, which executes the
//! benches first.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lbc_model::json::Json;

fn read_records(dir: &PathBuf) -> Vec<Json> {
    let mut records = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return records;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        match Json::parse(&text) {
            Ok(record) => records.push(record),
            Err(err) => eprintln!("skipping {}: {err}", path.display()),
        }
    }
    records
}

fn full_name(record: &Json) -> Option<String> {
    let group = record.get("group")?.as_str()?;
    let bench = record.get("bench")?.as_str()?;
    Some(if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    })
}

fn main() -> ExitCode {
    let out_dir = std::env::var_os("LBC_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/lbc-bench"));
    let records = read_records(&out_dir);
    if records.is_empty() {
        eprintln!(
            "no bench records under {}; run `cargo bench -p lbc-bench` first \
             (or use scripts/bench_baseline.sh)",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    // Median ns per full benchmark name, for the speedup pairing.
    let medians: BTreeMap<String, f64> = records
        .iter()
        .filter_map(|r| Some((full_name(r)?, r.get("median_ns")?.as_f64()?)))
        .collect();

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let mut speedups = Vec::new();
    let mut triples = Vec::new();
    for (name, naive_median) in &medians {
        let Some(base) = name.strip_suffix("_naive") else {
            continue;
        };
        let interned_median = medians.get(&format!("{base}_interned"));
        let ledger_median = medians.get(&format!("{base}_ledger"));
        if let Some(interned_median) = interned_median {
            if *interned_median > 0.0 {
                speedups.push(Json::object([
                    ("workload", Json::Str(base.to_string())),
                    ("naive_median_ns", Json::Num(*naive_median)),
                    ("interned_median_ns", Json::Num(*interned_median)),
                    ("speedup", Json::Num(round2(naive_median / interned_median))),
                ]));
            }
        }
        // The three-engine ladder: naive reference, per-node interned
        // control, shared-fabric ledger production engine.
        if let (Some(per_node), Some(ledger)) = (interned_median, ledger_median) {
            if *per_node > 0.0 && *ledger > 0.0 {
                triples.push(Json::object([
                    ("workload", Json::Str(base.to_string())),
                    ("naive_median_ns", Json::Num(*naive_median)),
                    ("per_node_median_ns", Json::Num(*per_node)),
                    ("ledger_median_ns", Json::Num(*ledger)),
                    (
                        "ledger_speedup_vs_naive",
                        Json::Num(round2(naive_median / ledger)),
                    ),
                    (
                        "ledger_speedup_vs_per_node",
                        Json::Num(round2(per_node / ledger)),
                    ),
                ]));
            }
        }
    }

    let baseline = Json::object([
        (
            "description",
            Json::Str(
                "Criterion-shim medians (ns/iter) for the lbc benches; \
                 'speedups' pairs the path-interning flood engine against \
                 the naive Path-cloning control, and 'speedup_triples' adds \
                 the shared-fabric ledger engine (naive / per-node / ledger) \
                 on the same workload"
                    .to_string(),
            ),
        ),
        ("benches", Json::Arr(records)),
        ("speedups", Json::Arr(speedups)),
        ("speedup_triples", Json::Arr(triples)),
    ]);

    let out_path = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("BENCH_baseline.json"), PathBuf::from);
    if let Err(err) = fs::write(&out_path, baseline.pretty() + "\n") {
        eprintln!("failed to write {}: {err}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} records)", out_path.display(), medians.len());
    ExitCode::SUCCESS
}
