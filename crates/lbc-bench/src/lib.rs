//! # lbc-bench
//!
//! Shared helpers for the Criterion benchmark harness. Each bench target
//! corresponds to one experiment id (see `EXPERIMENTS.md`): it prints the
//! experiment's table (the "figure/table regeneration") and then benchmarks
//! the hot path behind it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lbc_experiments::ExperimentResult;

/// Prints an experiment table with a separating banner, so `cargo bench`
/// output contains the regenerated rows alongside the timing data.
pub fn print_experiment(result: &ExperimentResult) {
    println!();
    println!("================ {} ================", result.id);
    println!("{}", result.render_table());
    println!();
}
