//! # lbc-bench
//!
//! Shared helpers for the Criterion benchmark harness. Each bench target
//! corresponds to one experiment id (see `EXPERIMENTS.md`): it prints the
//! experiment's table (the "figure/table regeneration") and then benchmarks
//! the hot path behind it.
//!
//! The [`floodsim`] module drives whole-graph floods through all three flood
//! engines — the production shared-fabric
//! [`lbc_consensus::flooding::LedgerFlooder`], the per-node path-interning
//! [`lbc_consensus::flooding::Flooder`] control, and the pre-refactor
//! [`lbc_consensus::flooding::NaiveFlooder`] reference — so the benches can
//! report naive/per-node/ledger speedup triples directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lbc_experiments::ExperimentResult;

/// Prints an experiment table with a separating banner, so `cargo bench`
/// output contains the regenerated rows alongside the timing data.
pub fn print_experiment(result: &ExperimentResult) {
    println!();
    println!("================ {} ================", result.id);
    println!("{}", result.render_table());
    println!();
}

/// Whole-graph flood drivers over all three engines.
pub mod floodsim {
    use lbc_consensus::flooding::{Flooder, LedgerFlooder, NaiveFloodMsg, NaiveFlooder};
    use lbc_consensus::FloodMsg;
    use lbc_graph::Graph;
    use lbc_model::{NodeId, SharedFloodLedger, SharedPathArena, Value};
    use lbc_sim::{Delivery, Inbox, Outgoing};

    fn input(v: usize) -> Value {
        Value::from(v.is_multiple_of(2))
    }

    /// The minimal engine interface the shared driver needs. Both engines
    /// run through the *same* generic loop, so the interned-vs-naive bench
    /// comparison cannot drift apart driver-wise.
    /// A node's initial transmissions, as returned by the engines' `start`.
    type Initiations<M> = Vec<Vec<Outgoing<M>>>;

    trait FloodEngine: Sized {
        type Msg: Clone;
        fn start_all(graph: &Graph) -> (Vec<Self>, Initiations<Self::Msg>);
        fn on_round(
            &mut self,
            graph: &Graph,
            first_round: bool,
            inbox: Inbox<'_, Self::Msg>,
        ) -> Vec<Outgoing<Self::Msg>>;
        fn received_count(&self) -> usize;
    }

    impl FloodEngine for LedgerFlooder {
        type Msg = FloodMsg;

        fn start_all(graph: &Graph) -> (Vec<Self>, Initiations<FloodMsg>) {
            let arena = SharedPathArena::new();
            let ledger = SharedFloodLedger::new();
            (0..graph.node_count())
                .map(|v| {
                    LedgerFlooder::start(arena.clone(), ledger.clone(), NodeId::new(v), input(v))
                })
                .unzip()
        }

        fn on_round(
            &mut self,
            graph: &Graph,
            first_round: bool,
            inbox: Inbox<'_, FloodMsg>,
        ) -> Vec<Outgoing<FloodMsg>> {
            LedgerFlooder::on_round(self, graph, first_round, inbox)
        }

        fn received_count(&self) -> usize {
            LedgerFlooder::received_count(self)
        }
    }

    impl FloodEngine for Flooder {
        type Msg = FloodMsg;

        fn start_all(graph: &Graph) -> (Vec<Self>, Initiations<FloodMsg>) {
            let arena = SharedPathArena::new();
            (0..graph.node_count())
                .map(|v| Flooder::start(arena.clone(), NodeId::new(v), input(v)))
                .unzip()
        }

        fn on_round(
            &mut self,
            graph: &Graph,
            first_round: bool,
            inbox: Inbox<'_, FloodMsg>,
        ) -> Vec<Outgoing<FloodMsg>> {
            Flooder::on_round(self, graph, first_round, inbox)
        }

        fn received_count(&self) -> usize {
            Flooder::received_count(self)
        }
    }

    impl FloodEngine for NaiveFlooder {
        type Msg = NaiveFloodMsg;

        fn start_all(graph: &Graph) -> (Vec<Self>, Initiations<NaiveFloodMsg>) {
            (0..graph.node_count())
                .map(|v| NaiveFlooder::start(NodeId::new(v), input(v)))
                .unzip()
        }

        fn on_round(
            &mut self,
            graph: &Graph,
            first_round: bool,
            inbox: Inbox<'_, NaiveFloodMsg>,
        ) -> Vec<Outgoing<NaiveFloodMsg>> {
            NaiveFlooder::on_round(self, graph, first_round, inbox)
        }

        fn received_count(&self) -> usize {
            NaiveFlooder::received_count(self)
        }
    }

    /// Floods every node's input for `rounds` rounds under local-broadcast
    /// delivery; returns the total number of full paths received across all
    /// nodes (kept as an optimization barrier).
    fn flood<E: FloodEngine>(graph: &Graph, rounds: usize) -> usize {
        let node_count = graph.node_count();
        let (mut flooders, mut pending) = E::start_all(graph);
        for round in 0..rounds {
            let mut inboxes: Vec<Vec<Delivery<E::Msg>>> = vec![Vec::new(); node_count];
            for (sender, outgoing) in pending.iter().enumerate() {
                for o in outgoing {
                    if let Outgoing::Broadcast(m) = o {
                        for neighbor in graph.neighbors(NodeId::new(sender)) {
                            inboxes[neighbor.index()].push(Delivery {
                                from: NodeId::new(sender),
                                message: m.clone(),
                            });
                        }
                    }
                }
            }
            for (v, flooder) in flooders.iter_mut().enumerate() {
                pending[v] = flooder.on_round(graph, round == 0, Inbox::direct(&inboxes[v]));
            }
        }
        flooders.iter().map(E::received_count).sum()
    }

    /// The flood through the production shared-fabric ledger engine.
    #[must_use]
    pub fn flood_ledger(graph: &Graph, rounds: usize) -> usize {
        flood::<LedgerFlooder>(graph, rounds)
    }

    /// The same flood through the per-node path-interning control engine.
    #[must_use]
    pub fn flood_interned(graph: &Graph, rounds: usize) -> usize {
        flood::<Flooder>(graph, rounds)
    }

    /// The same flood through the naive `Path`-cloning reference engine.
    #[must_use]
    pub fn flood_naive(graph: &Graph, rounds: usize) -> usize {
        flood::<NaiveFlooder>(graph, rounds)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use lbc_graph::generators;

        #[test]
        fn all_engines_count_the_same_paths() {
            for graph in [generators::cycle(7), generators::wheel(8)] {
                let rounds = graph.node_count();
                let naive = flood_naive(&graph, rounds);
                assert_eq!(flood_interned(&graph, rounds), naive);
                assert_eq!(flood_ledger(&graph, rounds), naive);
            }
        }
    }
}
