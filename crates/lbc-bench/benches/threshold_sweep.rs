//! E5 — requirement comparison: maximum tolerable `f` under local broadcast
//! versus point-to-point across graph families.
//!
//! Regenerates the E5 table and benchmarks the feasibility checkers (their
//! cost is dominated by vertex-connectivity max-flow computations).

use criterion::{criterion_group, criterion_main, Criterion};

use lbc_consensus::conditions;
use lbc_graph::{connectivity, generators};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e5_threshold_sweep());

    let c9 = generators::circulant(9, &[1, 2]);
    let h = generators::harary(5, 12);
    let mut group = c.benchmark_group("threshold_sweep");
    group.sample_size(20);
    group.bench_function("vertex_connectivity_c9_12", |b| {
        b.iter(|| connectivity::vertex_connectivity(&c9));
    });
    group.bench_function("max_f_local_broadcast_h5_12", |b| {
        b.iter(|| conditions::max_f_local_broadcast(&h));
    });
    group.bench_function("max_f_point_to_point_h5_12", |b| {
        b.iter(|| conditions::max_f_point_to_point(&h));
    });
    group.bench_function("full_e5_sweep", |b| {
        b.iter(lbc_experiments::e5_threshold_sweep);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
