//! Repeated-consensus service benchmarks: the chained multi-instance
//! driver (`runner::run_chain_under`, the engine behind `lbc serve`)
//! against the same workload replayed as independent one-shot runs.
//!
//! The chain keeps one long-lived `Network` across all instances — the
//! graph, `PathArena` plans, disjoint-path computations and membership
//! memos are built once and amortized — while the one-shot rows pay the
//! full construction cost per instance. The `chain*` median divided by
//! the instance count is the amortized per-decision cost the serve gate
//! walls in CI; the matching `oneshot*` row is the bound it must beat.
//!
//! Both variants run `C9(1,2)`, `f = 1`, a silent fault at node 3, and a
//! rotating window of three input assignments, under the synchronous
//! regime and under the fifo-2 asynchronous scheduler (where instance
//! `k + 1` starts while instance `k`'s flood tails are still draining).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner::{self, AlgorithmKind};
use lbc_graph::generators;
use lbc_model::{AsyncRegime, InputAssignment, NodeId, NodeSet, Regime, SchedulerKind};

const INSTANCES: usize = 100;

fn inputs_window() -> Vec<InputAssignment> {
    [0b011011001u64, 0b101100110, 0b010111010]
        .into_iter()
        .map(|bits| InputAssignment::from_bits(9, bits))
        .collect()
}

fn bench(c: &mut Criterion) {
    let graph = generators::circulant(9, &[1, 2]);
    let faulty = NodeSet::singleton(NodeId::new(3));
    let window = inputs_window();

    let chain = |regime: &Regime| {
        let mut adversary = Strategy::Silent.into_adversary();
        let window = window.clone();
        runner::run_chain_under(
            AlgorithmKind::AsyncFlood,
            regime,
            &graph,
            1,
            &faulty,
            INSTANCES,
            move |k| window[(k as usize) % window.len()].clone(),
            &mut adversary,
        )
    };
    let oneshot = |regime: &Regime| {
        let mut decided = 0usize;
        for k in 0..INSTANCES {
            let mut adversary = Strategy::Silent.into_adversary();
            let (outcome, _) = runner::run_kind_under(
                AlgorithmKind::AsyncFlood,
                regime,
                &graph,
                1,
                &window[k % window.len()],
                &faulty,
                &mut adversary,
            );
            decided += usize::from(outcome.verdict().is_correct());
        }
        decided
    };

    let fifo2 = Regime::Asynchronous(AsyncRegime {
        scheduler: SchedulerKind::Fifo,
        delay: 2,
        seed: 11,
    });

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    group.bench_function("chain100_circ9_f1_sync", |b| {
        b.iter(|| black_box(chain(&Regime::Synchronous)));
    });
    group.bench_function("oneshot100_circ9_f1_sync", |b| {
        b.iter(|| black_box(oneshot(&Regime::Synchronous)));
    });
    group.bench_function("chain100_circ9_f1_fifo_d2", |b| {
        b.iter(|| black_box(chain(&fifo2)));
    });
    group.bench_function("oneshot100_circ9_f1_fifo_d2", |b| {
        b.iter(|| black_box(oneshot(&fifo2)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
