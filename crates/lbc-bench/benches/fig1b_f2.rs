//! E2 — Figure 1(b) class: f = 2 graphs (degree ≥ 4, connectivity ≥ 4).
//!
//! Regenerates the E2 table and benchmarks both algorithms on K5 and the
//! octahedron C6(1,2) with two tampering faults.

use criterion::{criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e2_fig1b_f2());

    let faulty: NodeSet = [NodeId::new(0), NodeId::new(2)].into_iter().collect();
    let mut group = c.benchmark_group("fig1b_f2");
    group.sample_size(10);

    let k5 = generators::complete(5);
    let inputs5 = InputAssignment::from_bits(5, 0b01011);
    group.bench_function("algorithm1_k5_f2_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm1(&k5, 2, &inputs5, &faulty, &mut adversary)
        });
    });
    group.bench_function("algorithm2_k5_f2_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm2(&k5, 2, &inputs5, &faulty, &mut adversary)
        });
    });

    let c6 = generators::circulant(6, &[1, 2]);
    let inputs6 = InputAssignment::from_bits(6, 0b010110);
    group.bench_function("algorithm2_c6_12_f2_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm2(&c6, 2, &inputs6, &faulty, &mut adversary)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
