//! Campaign engine: the deterministic sweep executor, serial vs parallel.
//!
//! Runs one mid-sized multi-family campaign through `lbc-campaign` at
//! worker counts 1 (the serial baseline) and 8, plus the expansion step
//! alone. The two executor variants produce byte-identical canonical
//! reports (asserted here as well as in the crate's determinism tests), so
//! the timing difference is pure scheduling win. On a single-CPU host the
//! parallel variant necessarily degenerates to serial plus pool overhead —
//! the pair then measures that overhead instead of the speedup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lbc_campaign::spec::{FRange, RegimeSpec};
use lbc_campaign::{
    run_campaign, CampaignSpec, FaultPolicy, GraphFamily, InputPolicy, SizeSpec, StrategySpec,
    SweepSpec,
};
use lbc_consensus::AlgorithmKind;

/// A campaign heavy enough for the pool to matter (~1 s serial in release):
/// three families, three strategies, randomized placements and inputs.
fn bench_spec() -> CampaignSpec {
    let strategies = vec![
        StrategySpec::TamperRelays,
        StrategySpec::Equivocate,
        StrategySpec::Random { seed: None },
    ];
    CampaignSpec {
        name: "bench".to_string(),
        seed: 7,
        sweeps: vec![
            SweepSpec {
                family: GraphFamily::Cycle,
                sizes: SizeSpec::List(vec![11, 13]),
                f: FRange::exactly(1),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: strategies.clone(),
                faults: FaultPolicy::Random { count: 2 },
                inputs: InputPolicy::Random { count: 2 },
            },
            SweepSpec {
                family: GraphFamily::Circulant {
                    offsets: vec![1, 2],
                },
                sizes: SizeSpec::List(vec![9]),
                f: FRange::exactly(2),
                algorithms: vec![AlgorithmKind::Algorithm1],
                regimes: RegimeSpec::default_axis(),
                strategies: strategies.clone(),
                faults: FaultPolicy::Random { count: 2 },
                inputs: InputPolicy::Random { count: 1 },
            },
            SweepSpec {
                family: GraphFamily::Complete,
                sizes: SizeSpec::List(vec![5]),
                f: FRange { from: 1, to: 2 },
                algorithms: vec![AlgorithmKind::Algorithm1, AlgorithmKind::Algorithm2],
                regimes: RegimeSpec::default_axis(),
                strategies,
                faults: FaultPolicy::Random { count: 2 },
                inputs: InputPolicy::Random { count: 2 },
            },
        ],
        search: None,
        limits: None,
        serve: None,
    }
}

fn bench(c: &mut Criterion) {
    let spec = bench_spec();

    // Scheduling must be unobservable in the results.
    let serial = run_campaign(&spec, 1).unwrap().to_json().to_string();
    let parallel = run_campaign(&spec, 8).unwrap().to_json().to_string();
    assert_eq!(serial, parallel, "campaign executor must be deterministic");
    println!(
        "campaign bench spec: {} scenarios",
        spec.expand().unwrap().len()
    );

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("campaign_expand", |b| {
        b.iter(|| black_box(spec.expand().unwrap().len()));
    });
    group.bench_function("campaign_serial_1worker", |b| {
        b.iter(|| black_box(run_campaign(&spec, 1).unwrap().records().len()));
    });
    group.bench_function("campaign_parallel_8workers", |b| {
        b.iter(|| black_box(run_campaign(&spec, 8).unwrap().records().len()));
    });

    // dense_n21's flagship family — Algorithm 2 on cycles up to n = 21,
    // viable only since the shared flood fabric took the report flood off
    // the critical path. One serial run is both the wall-time sanity gate
    // (a regression back to per-node flood state would blow straight
    // through the bound) and the correctness check for the sweep.
    let dense =
        CampaignSpec::from_json_text(include_str!("../../../examples/campaigns/dense_n21.json"))
            .expect("committed spec parses");
    let cycle_alg2 = CampaignSpec {
        name: "dense_n21_cycle_alg2".to_string(),
        seed: dense.seed,
        sweeps: vec![dense.sweeps[1].clone()],
        search: None,
        limits: None,
        serve: None,
    };
    assert_eq!(cycle_alg2.sweeps[0].algorithms, [AlgorithmKind::Algorithm2]);
    let started = std::time::Instant::now();
    let report = run_campaign(&cycle_alg2, 1).unwrap();
    let elapsed = started.elapsed();
    assert!(report.all_correct(), "dense_n21 cycle/alg2 sweep regressed");
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "dense_n21 cycle/alg2 sweep took {elapsed:?} serial — report flood \
         is back on the critical path"
    );
    println!(
        "dense_n21 cycle/alg2 sweep: {} scenarios in {elapsed:?} (serial)",
        report.records().len()
    );
    group.bench_function("campaign_dense21_cycle_alg2_serial", |b| {
        b.iter(|| black_box(run_campaign(&cycle_alg2, 1).unwrap().records().len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
