//! E4 — Figure 3 / Lemma A.2: impossibility when the vertex connectivity is
//! below `⌊3f/2⌋ + 1`.
//!
//! Regenerates the E4 table and benchmarks the cut-based doubled-network
//! construction plus the demonstration run.

use criterion::{criterion_group, criterion_main, Criterion};

use lbc_consensus::Algorithm1Node;
use lbc_graph::generators;
use lbc_lowerbound::connectivity_construction;

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e4_connectivity_lower_bound());

    let graph = generators::cycle(6);
    let mut group = c.benchmark_group("lowerbound_cut");
    group.sample_size(10);
    group.bench_function("build_construction_c6_f2", |b| {
        b.iter(|| connectivity_construction(&graph, 2).expect("deficient"));
    });
    group.bench_function("demonstrate_violation_c6_f2", |b| {
        let construction = connectivity_construction(&graph, 2).expect("deficient");
        let rounds = Algorithm1Node::round_count(6, 2) + 4;
        b.iter(|| construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
