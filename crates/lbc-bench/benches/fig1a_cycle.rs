//! E1 — Figure 1(a): consensus on the 5-cycle with one Byzantine node.
//!
//! Regenerates the E1 table and benchmarks Algorithm 1 and Algorithm 2 on the
//! 5-cycle against a tampering fault.

use criterion::{criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e1_fig1a_cycle());

    let graph = generators::paper_fig1a();
    let inputs = InputAssignment::from_bits(5, 0b01101);
    let faulty = NodeSet::singleton(NodeId::new(3));

    let mut group = c.benchmark_group("fig1a_cycle");
    group.sample_size(10);
    group.bench_function("algorithm1_c5_f1_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary)
        });
    });
    group.bench_function("algorithm2_c5_f1_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
