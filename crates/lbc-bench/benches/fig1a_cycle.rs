//! E1 — Figure 1(a): consensus on the 5-cycle with one Byzantine node.
//!
//! Regenerates the E1 table, benchmarks Algorithm 1 and Algorithm 2 on the
//! 5-cycle against a tampering fault, and measures all three flood engines
//! at n = 13 — the `naive` / `interned` (per-node) / `ledger` triple is what
//! the bench-baseline aggregator derives its speedup records from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_bench::floodsim;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e1_fig1a_cycle());

    let graph = generators::paper_fig1a();
    let inputs = InputAssignment::from_bits(5, 0b01101);
    let faulty = NodeSet::singleton(NodeId::new(3));

    let mut group = c.benchmark_group("fig1a_cycle");
    group.sample_size(10);
    group.bench_function("algorithm1_c5_f1_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary)
        });
    });
    group.bench_function("algorithm2_c5_f1_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary)
        });
    });

    // Algorithm 1 end-to-end at n = 13 (14 phases × 13 flooding rounds).
    let c13 = generators::cycle(13);
    let inputs13 = InputAssignment::from_bits(13, 0b1010101010101);
    let faulty13 = NodeSet::singleton(NodeId::new(3));
    group.bench_function("algorithm1_c13_f1_tamper", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm1(&c13, 1, &inputs13, &faulty13, &mut adversary)
        });
    });

    // The flood engine alone — ledger (production) vs per-node interned
    // control vs naive reference — all 13 nodes flooding.
    group.bench_function("flood_c13_ledger", |b| {
        b.iter(|| black_box(floodsim::flood_ledger(&c13, 13)));
    });
    group.bench_function("flood_c13_interned", |b| {
        b.iter(|| black_box(floodsim::flood_interned(&c13, 13)));
    });
    group.bench_function("flood_c13_naive", |b| {
        b.iter(|| black_box(floodsim::flood_naive(&c13, 13)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
