//! E3 — Figure 2 / Lemma A.1: impossibility when the minimum degree is below
//! `2f`.
//!
//! Regenerates the E3 table and benchmarks the doubled-network construction
//! plus the demonstration run.

use criterion::{criterion_group, criterion_main, Criterion};

use lbc_consensus::Algorithm1Node;
use lbc_graph::generators;
use lbc_lowerbound::degree_construction;

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e3_degree_lower_bound());

    let graph = generators::cycle(4);
    let mut group = c.benchmark_group("lowerbound_degree");
    group.sample_size(10);
    group.bench_function("build_construction_c4_f2", |b| {
        b.iter(|| degree_construction(&graph, 2).expect("deficient"));
    });
    group.bench_function("demonstrate_violation_c4_f2", |b| {
        let construction = degree_construction(&graph, 2).expect("deficient");
        let rounds = Algorithm1Node::round_count(4, 2) + 4;
        b.iter(|| construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
