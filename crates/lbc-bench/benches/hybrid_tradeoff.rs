//! E7 — hybrid model trade-off: required connectivity as the number of
//! equivocating faults grows, plus Algorithm 3 executions.
//!
//! Regenerates the E7 table and benchmarks Algorithm 3 on K5 with and without
//! an equivocating fault.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e7_hybrid_tradeoff());

    let graph = generators::complete(5);
    let inputs = InputAssignment::from_bits(5, 0b00110);
    let faulty = NodeSet::singleton(NodeId::new(4));

    let mut group = c.benchmark_group("hybrid_tradeoff");
    group.sample_size(10);
    for t in [0usize, 1] {
        group.bench_with_input(BenchmarkId::new("algorithm3_k5_f1", t), &t, |b, &t| {
            let equivocators = if t > 0 {
                faulty.clone()
            } else {
                NodeSet::new()
            };
            b.iter(|| {
                let mut adversary = Strategy::Equivocate.into_adversary();
                runner::run_algorithm3(
                    &graph,
                    1,
                    t,
                    &equivocators,
                    &inputs,
                    &faulty,
                    &mut adversary,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
