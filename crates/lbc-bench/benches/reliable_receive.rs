//! E8 — Section 5.3 tool: reliable receive and fault identification on
//! `2f`-connected graphs.
//!
//! Regenerates the E8 table, benchmarks the report-flood-heavy Algorithm 2
//! run on K5 with two tampering faults (the phase-2 report flood dominates;
//! it runs on the shared flood fabric), and measures all three flood
//! engines on the 13-node wheel — a hub-rich topology whose path population
//! stresses the interning arena at n ≥ 12.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_bench::floodsim;
use lbc_consensus::{runner, Algorithm2Node};
use lbc_graph::generators;
use lbc_model::{CommModel, InputAssignment, NodeId, NodeSet};
use lbc_sim::Network;

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e8_reliable_receive());

    let graph = generators::complete(5);
    let inputs = InputAssignment::from_bits(5, 0b10101);
    let faulty: NodeSet = [NodeId::new(0), NodeId::new(1)].into_iter().collect();

    let mut group = c.benchmark_group("reliable_receive");
    group.sample_size(10);
    group.bench_function("algorithm2_k5_f2_identification", |b| {
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            runner::run_algorithm2(&graph, 2, &inputs, &faulty, &mut adversary)
        });
    });
    group.bench_function("algorithm2_k5_f2_inspect_roles", |b| {
        b.iter(|| {
            let nodes: Vec<Algorithm2Node> = graph
                .nodes()
                .map(|v| Algorithm2Node::new(inputs.get(v)))
                .collect();
            let mut network = Network::new(
                graph.clone(),
                CommModel::LocalBroadcast,
                faulty.clone(),
                nodes,
            )
            .with_fault_bound(2);
            let mut adversary = Strategy::TamperRelays.into_adversary();
            let _ = network.run(&mut adversary, Algorithm2Node::round_count(5) + 2);
            graph
                .nodes()
                .filter(|v| !faulty.contains(*v))
                .filter(|v| network.node(*v).is_type_a())
                .count()
        });
    });

    // Reliable receive rides on the phase-1 flood; measure that flood alone
    // on the 13-node wheel (hub + 12-cycle rim) through all three engines.
    let w13 = generators::wheel(13);
    group.bench_function("flood_wheel13_ledger", |b| {
        b.iter(|| black_box(floodsim::flood_ledger(&w13, 13)));
    });
    group.bench_function("flood_wheel13_interned", |b| {
        b.iter(|| black_box(floodsim::flood_interned(&w13, 13)));
    });
    group.bench_function("flood_wheel13_naive", |b| {
        b.iter(|| black_box(floodsim::flood_naive(&w13, 13)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
