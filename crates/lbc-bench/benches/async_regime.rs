//! Execution-regime benchmarks: the asynchronous algorithm across the
//! scheduler grid, plus the regime overhead of the event-scheduled network
//! loop against the lockstep loop on the same workload.
//!
//! Two comparisons matter here:
//!
//! * **scheduler cost** — the same conforming consensus workload
//!   (`C9(1,2)`, `f = 1`, tampered relays) under the synchronous regime and
//!   under each asynchronous scheduler family; the async rows measure the
//!   event-queue fabric (per-`(transmission, receiver)` scheduling, FIFO
//!   clamps, ring buckets) plus the stretched decision horizon.
//! * **engine overhead at lag 1** — `fifo` with `delay = 1` delivers on
//!   exactly the synchronous timetable, so its gap to the `sync` row is the
//!   pure bookkeeping cost of the asynchronous loop.
//! * **partial-synchrony cost** — the same workload under a hold-until-GST
//!   schedule: the pre-GST hold buffer, the burst release at GST and the
//!   stretched `gst + D` decision horizon on top of the fifo fabric.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{AsyncRegime, InputAssignment, NodeId, NodeSet, Regime, SchedulerKind};

fn bench(c: &mut Criterion) {
    let graph = generators::circulant(9, &[1, 2]);
    let inputs = InputAssignment::from_bits(9, 0b011011001);
    let faulty = NodeSet::singleton(NodeId::new(3));

    let run_under = |regime: &Regime| {
        let mut adversary = Strategy::TamperRelays.into_adversary();
        runner::run_async_flood(&graph, 1, &inputs, &faulty, regime, &mut adversary)
    };

    let mut group = c.benchmark_group("async_regime");
    group.sample_size(10);

    group.bench_function("asyncflood_circ9_f1_sync", |b| {
        b.iter(|| black_box(run_under(&Regime::Synchronous)));
    });
    group.bench_function("asyncflood_circ9_f1_fifo_d1", |b| {
        let regime = Regime::Asynchronous(AsyncRegime {
            scheduler: SchedulerKind::Fifo,
            delay: 1,
            seed: 11,
        });
        b.iter(|| black_box(run_under(&regime)));
    });
    for (name, scheduler, delay) in [
        ("asyncflood_circ9_f1_fifo_d3", SchedulerKind::Fifo, 3),
        ("asyncflood_circ9_f1_edge_lag_d3", SchedulerKind::EdgeLag, 3),
        (
            "asyncflood_circ9_f1_delay_max_d3",
            SchedulerKind::DelayMax,
            3,
        ),
    ] {
        group.bench_function(name, |b| {
            let regime = Regime::Asynchronous(AsyncRegime {
                scheduler,
                delay,
                seed: 11,
            });
            b.iter(|| black_box(run_under(&regime)));
        });
    }

    // Partial synchrony on the same instance: a 12-step adversarial prefix
    // holding two senders, then the fifo-3 fabric. The gap to the fifo_d3
    // row is the cost of the timing axis (hold buffer + GST burst + the
    // longer horizon), not of a different scheduler.
    group.bench_function("asyncflood_circ9_f1_psync_g12_h2_fifo_d3", |b| {
        let regime = Regime::PartialSync {
            gst: 12,
            pre: lbc_model::AdversarialSchedule::holding(&[2, 6]),
            post: AsyncRegime {
                scheduler: SchedulerKind::Fifo,
                delay: 3,
                seed: 11,
            },
        };
        b.iter(|| black_box(run_under(&regime)));
    });

    // A larger conforming instance (degree-4 circulant: the path population
    // stays protocol-bound, not combinatorial): the fairness bound
    // dominates the step count, so this row tracks how the event fabric
    // scales with n and D together.
    let c11 = generators::circulant(11, &[1, 2]);
    let inputs11 = InputAssignment::from_bits(11, 0b10110011010);
    let faulty11 = NodeSet::singleton(NodeId::new(5));
    group.bench_function("asyncflood_circ11_f1_edge_lag_d4", |b| {
        let regime = Regime::Asynchronous(AsyncRegime {
            scheduler: SchedulerKind::EdgeLag,
            delay: 4,
            seed: 11,
        });
        b.iter(|| {
            let mut adversary = Strategy::TamperRelays.into_adversary();
            black_box(runner::run_async_flood(
                &c11,
                1,
                &inputs11,
                &faulty11,
                &regime,
                &mut adversary,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
