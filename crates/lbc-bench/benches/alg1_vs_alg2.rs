//! E6 — round/message complexity: Algorithm 1 (exponential phases) versus
//! Algorithm 2 (3n rounds) versus the point-to-point baseline.
//!
//! Regenerates the E6 table and benchmarks all three protocols on graphs
//! where each applies, sweeping the cycle length for the linear-round
//! algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lbc_adversary::Strategy;
use lbc_consensus::runner;
use lbc_graph::generators;
use lbc_model::{InputAssignment, NodeId, NodeSet};

fn bench(c: &mut Criterion) {
    lbc_bench::print_experiment(&lbc_experiments::e6_round_complexity());

    let faulty = NodeSet::singleton(NodeId::new(1));
    let mut group = c.benchmark_group("alg1_vs_alg2");
    group.sample_size(10);

    for n in [5usize, 7, 9] {
        let graph = generators::cycle(n);
        let inputs = InputAssignment::from_bits(n, 0b010101010 & ((1 << n) - 1));
        group.bench_with_input(BenchmarkId::new("algorithm1_cycle_f1", n), &n, |b, _| {
            b.iter(|| {
                let mut adversary = Strategy::TamperRelays.into_adversary();
                runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary)
            });
        });
        group.bench_with_input(BenchmarkId::new("algorithm2_cycle_f1", n), &n, |b, _| {
            b.iter(|| {
                let mut adversary = Strategy::TamperRelays.into_adversary();
                runner::run_algorithm2(&graph, 1, &inputs, &faulty, &mut adversary)
            });
        });
    }

    // The point-to-point baseline needs n >= 3f+1 and 2f+1 connectivity.
    for n in [4usize, 5, 6] {
        let graph = generators::complete(n);
        let inputs = InputAssignment::from_bits(n, 0b010101 & ((1 << n) - 1));
        group.bench_with_input(BenchmarkId::new("p2p_baseline_kn_f1", n), &n, |b, _| {
            b.iter(|| {
                let mut adversary = Strategy::Equivocate.into_adversary();
                runner::run_p2p_baseline(&graph, 1, &inputs, &faulty, &mut adversary)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
