//! # lbc-telemetry
//!
//! Deterministic observability for the local-broadcast consensus fabric:
//!
//! * [`Event`] — the structured event vocabulary: run/step boundaries,
//!   transmission/delivery with `(origin, relay path, PathId)` provenance,
//!   scheduler decisions (chosen edge, lag, queue depth), partial-synchrony
//!   holds and the GST burst, ledger channel lifecycle, adversary
//!   interference, and node decisions with their evidence,
//! * [`Observer`] / [`ObserverHandle`] — the sink abstraction threaded
//!   through the simulator; the disabled handle compiles the entire
//!   instrumentation down to one branch per site (closure-based emission,
//!   bench-gated),
//! * [`Recorder`] — an in-memory event stream used by `lbc trace` and the
//!   determinism tests,
//! * [`MessageView`] / [`MsgMeta`] — the protocol-agnostic view of message
//!   content that lets the fabric describe any protocol's messages,
//! * [`MetricsRegistry`] / [`MetricsCollector`] / [`Histogram`] — the
//!   deterministic metrics layer feeding the opt-in `telemetry` section of
//!   campaign reports.
//!
//! Everything here is deterministic by construction: no wall clock, no
//! thread identity, no hashing-order dependence. Wall-clock measurement
//! stays in the campaign executor and is confined to summary/CSV surfaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod metrics;
mod observer;

pub use event::{Event, MessageView, Moment, MsgMeta};
pub use metrics::{Histogram, MetricsCollector, MetricsRegistry};
pub use observer::{Observer, ObserverHandle, Recorder};
