//! The deterministic structured event vocabulary of the fabric.
//!
//! Every event an execution emits is a plain value over `lbc-model`
//! vocabulary types: no timestamps, no addresses, no thread identifiers.
//! Two runs of the same scenario therefore produce *byte-identical* event
//! streams regardless of worker count or host, which is what lets the
//! telemetry layer share the repo's determinism contract.

use std::fmt::Write as _;

use lbc_model::{NodeId, PathId, SharedPathArena, Value};

/// When in an execution an event happened: before round 0 (the
/// start-of-execution `on_start` sweep) or at a concrete scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Moment {
    /// The start-of-execution hook, before any step runs.
    Start,
    /// Scheduler step / synchronous round `r`.
    Step(u64),
}

impl Moment {
    /// Renders the moment as a fixed-width-free token (`start` or `s<r>`).
    #[must_use]
    pub fn token(self) -> String {
        match self {
            Moment::Start => "start".to_string(),
            Moment::Step(r) => format!("s{r}"),
        }
    }
}

/// A protocol-agnostic view of one message's observable content.
///
/// Concrete message types implement [`MessageView`] to expose what the
/// telemetry layer can say about them: the carried value, the flood path
/// provenance (resolved against the execution's arena so the event stream is
/// self-contained), and — for report messages — which initiation the report
/// observed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MsgMeta {
    /// Short message-kind tag (`"value"`, `"flood"`, `"report"`, ...).
    pub kind: &'static str,
    /// The binary value carried, when the message carries one.
    pub value: Option<Value>,
    /// The relay path the message claims, interned id.
    pub path: Option<PathId>,
    /// The relay path resolved to node identities (`path_nodes[0]` is the
    /// origin of the flood).
    pub path_nodes: Vec<NodeId>,
    /// For report-shaped messages: the node whose initiation was observed.
    pub observed: Option<NodeId>,
}

impl MsgMeta {
    /// Meta for a message with nothing to expose.
    #[must_use]
    pub fn opaque(kind: &'static str) -> Self {
        MsgMeta {
            kind,
            ..MsgMeta::default()
        }
    }

    /// The origin of the flood this message belongs to, when the path
    /// provenance identifies one (the first hop of the claimed path).
    #[must_use]
    pub fn origin(&self) -> Option<NodeId> {
        self.path_nodes.first().copied()
    }

    /// Renders the meta as a compact deterministic token, e.g.
    /// `flood v=1 path=[v0>v1>v2]` or `report obs=v3 v=0 path=[v3]`.
    #[must_use]
    pub fn token(&self) -> String {
        let mut s = String::from(self.kind);
        if let Some(observed) = self.observed {
            let _ = write!(s, " obs={observed}");
        }
        if let Some(value) = self.value {
            let _ = write!(s, " v={}", value.as_u8());
        }
        if !self.path_nodes.is_empty() {
            s.push_str(" path=[");
            for (i, node) in self.path_nodes.iter().enumerate() {
                if i > 0 {
                    s.push('>');
                }
                let _ = write!(s, "{node}");
            }
            s.push(']');
        }
        s
    }
}

/// Message types the telemetry layer can describe.
///
/// The `arena` is the execution's shared path-interning arena; path-carrying
/// messages resolve their `PathId` against it so that the emitted
/// [`MsgMeta`] is meaningful outside the run.
pub trait MessageView {
    /// The observable content of this message.
    fn meta(&self, arena: &SharedPathArena) -> MsgMeta;
}

impl MessageView for Value {
    fn meta(&self, _arena: &SharedPathArena) -> MsgMeta {
        MsgMeta {
            kind: "value",
            value: Some(*self),
            ..MsgMeta::default()
        }
    }
}

/// One deterministic structured event emitted by an instrumented execution.
///
/// The variants cover the fabric end to end: run/step boundaries,
/// transmission and delivery with provenance, the scheduler's decisions
/// (including partial-synchrony holds and the GST burst), ledger channel
/// lifecycle, adversary interference, and node decisions with the evidence
/// that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An execution began.
    RunStart {
        /// Number of nodes.
        n: usize,
        /// Declared fault bound.
        f: usize,
        /// Human-readable regime description.
        regime: String,
    },
    /// A scheduler step (or synchronous round) began.
    StepStart {
        /// The step index.
        step: u64,
    },
    /// A node handed a transmission to the fabric.
    Transmission {
        /// When the transmission was produced.
        at: Moment,
        /// The transmitting node.
        from: NodeId,
        /// The transmission's slot in the round buffer (shared by all its
        /// deliveries).
        slot: u32,
        /// `true` for a broadcast, `false` for an addressed unicast.
        broadcast: bool,
        /// Observable message content.
        meta: MsgMeta,
    },
    /// The fabric delivered one transmission to one receiver.
    Delivery {
        /// The step the delivery happened at.
        step: u64,
        /// The receiving node.
        to: NodeId,
        /// The transmitting neighbor.
        from: NodeId,
        /// The transmission slot this delivery came from.
        slot: u32,
        /// Observable message content.
        meta: MsgMeta,
    },
    /// The asynchronous scheduler chose a delivery step for an edge.
    Scheduled {
        /// The step the transmission entered the queue.
        at: Moment,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The lag the scheduler drew (1 ≤ lag ≤ D).
        lag: u64,
        /// The step the delivery was placed at (after FIFO clamping).
        due: u64,
        /// Events pending in the scheduler (due-ring plus held set,
        /// including this one) right after this delivery was placed.
        queue_depth: usize,
    },
    /// A pre-GST schedule held a delivery back until the global
    /// stabilization time.
    Held {
        /// The step the transmission was produced at.
        at: Moment,
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// The transmission slot held back.
        slot: u32,
    },
    /// The partial-synchrony burst at GST released all held deliveries.
    BurstRelease {
        /// The step (== GST) the burst fired at.
        step: u64,
        /// Number of held deliveries released.
        count: usize,
    },
    /// A faulty node's adversary interfered with its honest outgoing
    /// transmissions this step.
    AdversaryAction {
        /// When the interference happened.
        at: Moment,
        /// The faulty node.
        node: NodeId,
        /// Honest transmissions whose payload was altered.
        tampered: usize,
        /// Honest transmissions suppressed.
        omitted: usize,
        /// Extra conflicting transmissions injected beyond the honest set.
        equivocated: usize,
    },
    /// The flood ledger opened a `(tag, epoch)` channel.
    ChannelOpened {
        /// Channel tag (protocol-chosen stream id).
        tag: u32,
        /// Channel epoch (consensus instance).
        epoch: u32,
        /// The dense channel slot assigned.
        channel: u32,
    },
    /// The flood ledger retired a `(tag, epoch)` channel and recycled its
    /// slot.
    ChannelRetired {
        /// Channel tag.
        tag: u32,
        /// Channel epoch.
        epoch: u32,
        /// The dense channel slot recycled.
        channel: u32,
    },
    /// A node decided, with the evidence that produced the decision.
    NodeDecided {
        /// When the decision was observed.
        at: Moment,
        /// The deciding node.
        node: NodeId,
        /// The decided value.
        value: Value,
        /// The `(origin, value)` evidence set the node decided on — for the
        /// asynchronous flood protocol these are the κ-witnessed reliable
        /// receptions (f+1 internally-disjoint paths each).
        evidence: Vec<(NodeId, Value)>,
    },
    /// The execution was cancelled cooperatively (a watchdog fired) before
    /// it finished; the trace up to `step` is all the run produced.
    RunInterrupted {
        /// The step the cancellation was observed at.
        step: u64,
    },
    /// The execution finished.
    RunEnd {
        /// Rounds/steps executed.
        rounds: usize,
        /// Paths interned in the execution's arena at the end of the run.
        arena_paths: usize,
        /// Live (non-retired) ledger channels at the end of the run.
        live_channels: usize,
        /// Total ledger channel slots ever allocated.
        allocated_channels: usize,
    },
}

impl Event {
    /// Renders the event as one deterministic text line.
    ///
    /// This is the surface the `lbc trace` timeline and the determinism
    /// tests consume: identical executions produce identical line streams.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Event::RunStart { n, f, regime } => {
                format!("run-start n={n} f={f} regime={regime}")
            }
            Event::StepStart { step } => format!("step {step}"),
            Event::Transmission {
                at,
                from,
                slot,
                broadcast,
                meta,
            } => {
                let mode = if *broadcast { "bcast" } else { "ucast" };
                format!("  tx {} {from} slot={slot} {mode} {}", at.token(), meta.token())
            }
            Event::Delivery {
                step,
                to,
                from,
                slot,
                meta,
            } => format!(
                "  rx s{step} {to} <- {from} slot={slot} {}",
                meta.token()
            ),
            Event::Scheduled {
                at,
                from,
                to,
                lag,
                due,
                queue_depth,
            } => format!(
                "  sched {} {from}->{to} lag={lag} due=s{due} depth={queue_depth}",
                at.token()
            ),
            Event::Held { at, from, to, slot } => {
                format!("  hold {} {from}->{to} slot={slot}", at.token())
            }
            Event::BurstRelease { step, count } => {
                format!("  burst s{step} released={count}")
            }
            Event::AdversaryAction {
                at,
                node,
                tampered,
                omitted,
                equivocated,
            } => format!(
                "  adv {} {node} tampered={tampered} omitted={omitted} equivocated={equivocated}",
                at.token()
            ),
            Event::ChannelOpened { tag, epoch, channel } => {
                format!("  chan-open tag={tag} epoch={epoch} slot={channel}")
            }
            Event::ChannelRetired { tag, epoch, channel } => {
                format!("  chan-retire tag={tag} epoch={epoch} slot={channel}")
            }
            Event::NodeDecided {
                at,
                node,
                value,
                evidence,
            } => {
                let mut s = format!("  decide {} {node} v={}", at.token(), value.as_u8());
                if !evidence.is_empty() {
                    s.push_str(" evidence=[");
                    for (i, (origin, v)) in evidence.iter().enumerate() {
                        if i > 0 {
                            s.push(' ');
                        }
                        let _ = write!(s, "{origin}:{}", v.as_u8());
                    }
                    s.push(']');
                }
                s
            }
            Event::RunInterrupted { step } => format!("run-interrupted s{step}"),
            Event::RunEnd {
                rounds,
                arena_paths,
                live_channels,
                allocated_channels,
            } => format!(
                "run-end rounds={rounds} arena_paths={arena_paths} live_channels={live_channels} allocated_channels={allocated_channels}"
            ),
        }
    }

    /// The moment this event is anchored at, when it has one.
    #[must_use]
    pub fn moment(&self) -> Option<Moment> {
        match self {
            Event::RunStart { .. }
            | Event::RunEnd { .. }
            | Event::ChannelOpened { .. }
            | Event::ChannelRetired { .. } => None,
            Event::StepStart { step }
            | Event::Delivery { step, .. }
            | Event::BurstRelease { step, .. }
            | Event::RunInterrupted { step } => Some(Moment::Step(*step)),
            Event::Transmission { at, .. }
            | Event::Scheduled { at, .. }
            | Event::Held { at, .. }
            | Event::AdversaryAction { at, .. }
            | Event::NodeDecided { at, .. } => Some(*at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moment_tokens() {
        assert_eq!(Moment::Start.token(), "start");
        assert_eq!(Moment::Step(7).token(), "s7");
        assert!(Moment::Start < Moment::Step(0));
    }

    #[test]
    fn meta_token_includes_path_and_value() {
        let meta = MsgMeta {
            kind: "flood",
            value: Some(Value::One),
            path: Some(PathId::EMPTY),
            path_nodes: vec![NodeId::new(0), NodeId::new(2)],
            observed: None,
        };
        assert_eq!(meta.token(), "flood v=1 path=[v0>v2]");
        assert_eq!(meta.origin(), Some(NodeId::new(0)));
    }

    #[test]
    fn value_message_view() {
        let arena = SharedPathArena::new();
        let meta = Value::Zero.meta(&arena);
        assert_eq!(meta.kind, "value");
        assert_eq!(meta.value, Some(Value::Zero));
        assert_eq!(meta.origin(), None);
    }

    #[test]
    fn render_is_stable() {
        let e = Event::Delivery {
            step: 3,
            to: NodeId::new(1),
            from: NodeId::new(0),
            slot: 5,
            meta: MsgMeta::opaque("flood"),
        };
        assert_eq!(e.render(), "  rx s3 v1 <- v0 slot=5 flood");
        let d = Event::NodeDecided {
            at: Moment::Step(9),
            node: NodeId::new(4),
            value: Value::One,
            evidence: vec![(NodeId::new(0), Value::One), (NodeId::new(1), Value::Zero)],
        };
        assert_eq!(d.render(), "  decide s9 v4 v=1 evidence=[v0:1 v1:0]");
    }
}
