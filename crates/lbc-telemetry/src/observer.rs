//! Observer sinks: where instrumented executions send their events.
//!
//! The hot path is instrumented with [`ObserverHandle::emit`], which takes a
//! *closure* producing the event. When the handle is disabled (the default
//! everywhere), `emit` is a single `Option` discriminant check and the
//! closure — along with every allocation it would have performed — is never
//! evaluated. This is what keeps the disabled-observer configuration within
//! noise of the uninstrumented hot path (bench-gated in
//! `scripts/bench_gate.sh`).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::Event;

/// A sink for structured execution events.
pub trait Observer {
    /// Called once per emitted event, in deterministic execution order.
    fn on_event(&mut self, event: &Event);
}

/// An observer that records every event in order.
///
/// The caller keeps a second `Rc` to the recorder (see
/// [`ObserverHandle::recorder`]) and reads the stream back after the run.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
}

impl Recorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Renders the whole stream as deterministic text, one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A cheap, cloneable handle to an optional observer.
///
/// Threaded by value through `Network` and by reference through
/// `NodeContext`. The disabled handle (`Default`) carries `None`: emission
/// compiles down to one branch and zero event construction.
#[derive(Clone, Default)]
pub struct ObserverHandle {
    sink: Option<Rc<RefCell<dyn Observer>>>,
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverHandle")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl ObserverHandle {
    /// The no-op handle: every emission is skipped.
    #[must_use]
    pub fn disabled() -> Self {
        ObserverHandle::default()
    }

    /// Wraps a shared observer. The caller keeps its own `Rc` to read the
    /// sink back after the run.
    #[must_use]
    pub fn from_shared<O: Observer + 'static>(sink: Rc<RefCell<O>>) -> Self {
        ObserverHandle { sink: Some(sink) }
    }

    /// Builds a fresh [`Recorder`]-backed handle, returning the handle and
    /// the shared recorder to read events from after the run.
    #[must_use]
    pub fn recorder() -> (Self, Rc<RefCell<Recorder>>) {
        let recorder = Rc::new(RefCell::new(Recorder::new()));
        (ObserverHandle::from_shared(Rc::clone(&recorder)), recorder)
    }

    /// Whether a sink is attached. Instrumentation uses this to skip
    /// *side computations* (not just event construction) that only matter
    /// when someone is listening, e.g. enabling the ledger's channel-event
    /// log.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event. The closure is evaluated only when a sink is
    /// attached, so a disabled handle performs no event construction work.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().on_event(&make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Moment;
    use lbc_model::NodeId;

    #[test]
    fn disabled_handle_never_evaluates_the_closure() {
        let handle = ObserverHandle::disabled();
        assert!(!handle.enabled());
        let mut evaluated = false;
        handle.emit(|| {
            evaluated = true;
            Event::StepStart { step: 0 }
        });
        assert!(!evaluated);
    }

    #[test]
    fn recorder_captures_in_order() {
        let (handle, recorder) = ObserverHandle::recorder();
        assert!(handle.enabled());
        handle.emit(|| Event::StepStart { step: 0 });
        handle.emit(|| Event::BurstRelease { step: 4, count: 2 });
        let events = recorder.borrow().events().to_vec();
        assert_eq!(
            events,
            vec![
                Event::StepStart { step: 0 },
                Event::BurstRelease { step: 4, count: 2 },
            ]
        );
        assert_eq!(
            recorder.borrow().render(),
            "step 0\n  burst s4 released=2\n"
        );
    }

    #[test]
    fn cloned_handles_share_the_sink() {
        let (handle, recorder) = ObserverHandle::recorder();
        let other = handle.clone();
        other.emit(|| Event::AdversaryAction {
            at: Moment::Start,
            node: NodeId::new(3),
            tampered: 1,
            omitted: 0,
            equivocated: 0,
        });
        assert_eq!(recorder.borrow().events().len(), 1);
    }
}
