//! The deterministic metrics registry.
//!
//! Counters, gauges and histograms keyed by name, held in `BTreeMap`s so
//! that serialization order — and therefore the opt-in `telemetry` section
//! of campaign reports — is byte-stable regardless of insertion order,
//! worker count, or host. No wall-clock quantity ever enters a registry
//! destined for a canonical report: wall time stays confined to the summary
//! and CSV surfaces, exactly like the existing `wall_micros` column.

use std::collections::BTreeMap;

use lbc_model::json::{Json, ToJson};

use crate::event::Event;
use crate::observer::Observer;

/// A deterministic summary histogram: count, sum, min, max.
///
/// Enough to derive mean and range without storing samples; all fields are
/// integers so aggregation is exact and platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        Json::object([
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

/// A named, deterministic set of counters, gauges and histograms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named counter.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises the named gauge to `value` if it is higher (high-water mark).
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records `sample` into the named histogram.
    pub fn observe(&mut self, name: &str, sample: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// The value of a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge, when set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, when any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// maximum (aggregated gauges are high-water marks), histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::object([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// An [`Observer`] that tallies the event stream into a [`MetricsRegistry`].
///
/// This is the campaign executor's per-cell collector: attach one per
/// scenario run, then [`MetricsCollector::finish`] to obtain the registry
/// that feeds the report's opt-in `telemetry` section.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    registry: MetricsRegistry,
    /// Deliveries per receiver within the current step (inbox depth).
    step_inbox: BTreeMap<usize, u64>,
    /// Transmissions per flood origin over the whole run (path population).
    per_origin: BTreeMap<usize, u64>,
    open_channels: u64,
}

impl MetricsCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    fn flush_step(&mut self) {
        let depths: Vec<u64> = self.step_inbox.values().copied().collect();
        self.step_inbox.clear();
        for depth in depths {
            self.registry.observe("inbox_depth", depth);
        }
    }

    /// Finalizes pending per-step state and returns the registry.
    #[must_use]
    pub fn finish(mut self) -> MetricsRegistry {
        self.flush_step();
        let populations: Vec<u64> = self.per_origin.values().copied().collect();
        for population in populations {
            self.registry
                .observe("path_population_per_origin", population);
        }
        self.registry
    }
}

impl Observer for MetricsCollector {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::RunStart { .. } => {}
            Event::StepStart { .. } => self.flush_step(),
            Event::Transmission { meta, .. } => {
                self.registry.inc("transmissions", 1);
                if let Some(origin) = meta.origin() {
                    *self.per_origin.entry(origin.index()).or_insert(0) += 1;
                }
            }
            Event::Delivery { to, .. } => {
                self.registry.inc("deliveries", 1);
                *self.step_inbox.entry(to.index()).or_insert(0) += 1;
            }
            Event::Scheduled { queue_depth, .. } => {
                self.registry.inc("scheduled", 1);
                self.registry.observe("queue_depth", *queue_depth as u64);
            }
            Event::Held { .. } => self.registry.inc("held", 1),
            Event::BurstRelease { count, .. } => {
                self.registry.inc("bursts", 1);
                self.registry.inc("burst_deliveries", *count as u64);
                self.registry.observe("burst_size", *count as u64);
            }
            Event::AdversaryAction {
                tampered,
                omitted,
                equivocated,
                ..
            } => {
                self.registry.inc("tampered", *tampered as u64);
                self.registry.inc("omitted", *omitted as u64);
                self.registry.inc("equivocated", *equivocated as u64);
            }
            Event::ChannelOpened { .. } => {
                self.registry.inc("channels_opened", 1);
                self.open_channels += 1;
                self.registry
                    .gauge_max("ledger_occupancy_peak", self.open_channels);
            }
            Event::ChannelRetired { .. } => {
                self.registry.inc("channels_retired", 1);
                self.open_channels = self.open_channels.saturating_sub(1);
            }
            Event::NodeDecided { .. } => self.registry.inc("decisions", 1),
            Event::RunInterrupted { step } => {
                self.registry.inc("interrupted", 1);
                self.registry.set_gauge("interrupted_at_step", *step);
            }
            Event::RunEnd {
                rounds,
                arena_paths,
                live_channels,
                allocated_channels,
            } => {
                self.registry.set_gauge("rounds", *rounds as u64);
                self.registry.set_gauge("arena_paths", *arena_paths as u64);
                self.registry
                    .set_gauge("ledger_live_channels", *live_channels as u64);
                self.registry
                    .set_gauge("ledger_allocated_channels", *allocated_channels as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Moment, MsgMeta};
    use lbc_model::NodeId;

    #[test]
    fn histogram_tracks_bounds_and_mean() {
        let mut h = Histogram::default();
        h.record(4);
        h.record(2);
        h.record(6);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 12);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 6);
        assert!((h.mean() - 4.0).abs() < 1e-9);
        let mut other = Histogram::default();
        other.record(10);
        h.merge(&other);
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 10);
    }

    #[test]
    fn registry_serializes_in_name_order() {
        let mut r = MetricsRegistry::new();
        r.inc("zeta", 2);
        r.inc("alpha", 1);
        r.set_gauge("peak", 9);
        r.observe("depth", 3);
        let json = r.to_json().to_string();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "counters must serialize sorted by name");
        assert_eq!(r.counter("zeta"), 2);
        assert_eq!(r.gauge("peak"), Some(9));
        assert_eq!(r.histogram("depth").unwrap().count, 1);
    }

    #[test]
    fn registry_merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.inc("tx", 3);
        a.set_gauge("peak", 5);
        let mut b = MetricsRegistry::new();
        b.inc("tx", 4);
        b.set_gauge("peak", 2);
        b.observe("depth", 7);
        a.merge(&b);
        assert_eq!(a.counter("tx"), 7);
        assert_eq!(a.gauge("peak"), Some(5));
        assert_eq!(a.histogram("depth").unwrap().max, 7);
    }

    #[test]
    fn collector_tallies_the_stream() {
        let mut c = MetricsCollector::new();
        let meta = MsgMeta {
            kind: "flood",
            path_nodes: vec![NodeId::new(0)],
            ..MsgMeta::default()
        };
        c.on_event(&Event::StepStart { step: 0 });
        c.on_event(&Event::Transmission {
            at: Moment::Step(0),
            from: NodeId::new(0),
            slot: 0,
            broadcast: true,
            meta: meta.clone(),
        });
        c.on_event(&Event::Delivery {
            step: 0,
            to: NodeId::new(1),
            from: NodeId::new(0),
            slot: 0,
            meta,
        });
        c.on_event(&Event::ChannelOpened {
            tag: 0,
            epoch: 0,
            channel: 0,
        });
        c.on_event(&Event::AdversaryAction {
            at: Moment::Step(0),
            node: NodeId::new(2),
            tampered: 1,
            omitted: 2,
            equivocated: 0,
        });
        c.on_event(&Event::RunEnd {
            rounds: 3,
            arena_paths: 11,
            live_channels: 1,
            allocated_channels: 1,
        });
        let registry = c.finish();
        assert_eq!(registry.counter("transmissions"), 1);
        assert_eq!(registry.counter("deliveries"), 1);
        assert_eq!(registry.counter("tampered"), 1);
        assert_eq!(registry.counter("omitted"), 2);
        assert_eq!(registry.gauge("rounds"), Some(3));
        assert_eq!(registry.gauge("ledger_occupancy_peak"), Some(1));
        assert_eq!(registry.histogram("inbox_depth").unwrap().count, 1);
        assert_eq!(
            registry
                .histogram("path_population_per_origin")
                .unwrap()
                .sum,
            1
        );
    }
}
