//! The regime-abstracted network engine.
//!
//! One [`Network`] executes one [`Protocol`] instance per node under an
//! execution [`Regime`]:
//!
//! * **synchronous** — the original lockstep loop, byte-for-byte: round `r`'s
//!   transmissions are delivered to every receiver at round `r + 1`;
//! * **asynchronous** — every `(transmission, receiver)` pair is scheduled
//!   individually by the regime's deterministic scheduler, subject to the
//!   eventual-fairness bound (a transmission reaches each receiver within
//!   `D` steps) and per-edge FIFO order (a physical local-broadcast channel
//!   delivers one sender's transmissions in order, whatever the lag).
//!
//! Both regimes share the zero-clone delivery fabric: a transmission lives
//! once in a shared buffer and inboxes are slot indices into it.

use lbc_graph::Graph;
use lbc_model::{
    ChannelEvent, CommModel, NodeId, NodeSet, Regime, Round, SharedFloodLedger, SharedPathArena,
    Value,
};
use lbc_telemetry::{Event, MessageView, Moment, ObserverHandle};

use crate::adversary::Adversary;
use crate::cancel::CancelToken;
use crate::protocol::{Delivery, Inbox, NodeContext, Outgoing, Protocol};
use crate::trace::{RoundStats, Trace};

/// Diffs a faulty node's honest outgoing set against what its adversary
/// actually transmitted, as `(tampered, omitted, equivocated)`: unmatched
/// actual transmissions are paired against unmatched honest ones as in-place
/// tampering; honest leftovers were omitted; actual leftovers beyond that
/// are injected conflicts (equivocation pressure).
fn interference_counts<M: PartialEq>(
    honest: &[Outgoing<M>],
    actual: &[Outgoing<M>],
) -> (usize, usize, usize) {
    let mut matched = vec![false; honest.len()];
    let mut injected = 0usize;
    for transmission in actual {
        match honest
            .iter()
            .enumerate()
            .find(|(i, h)| !matched[*i] && *h == transmission)
        {
            Some((i, _)) => matched[i] = true,
            None => injected += 1,
        }
    }
    let unmatched = matched.iter().filter(|m| !**m).count();
    let tampered = unmatched.min(injected);
    (tampered, unmatched - tampered, injected - tampered)
}

/// The result of running a simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Decided output per node (`None` when the node did not decide before
    /// the round limit).
    pub outputs: Vec<Option<Value>>,
    /// Whether every non-faulty node reported termination before the round
    /// limit.
    pub all_non_faulty_terminated: bool,
    /// Round and message accounting for the execution.
    pub trace: Trace,
}

impl RunReport {
    /// The decided output of `node`, if it decided.
    #[must_use]
    pub fn output_of(&self, node: NodeId) -> Option<Value> {
        self.outputs.get(node.index()).copied().flatten()
    }
}

/// A synchronous network executing one [`Protocol`] instance per node.
///
/// See the crate-level documentation for the delivery semantics of each
/// [`CommModel`].
#[derive(Debug)]
pub struct Network<P: Protocol> {
    pub(crate) graph: Graph,
    pub(crate) model: CommModel,
    pub(crate) faulty: NodeSet,
    pub(crate) f: usize,
    pub(crate) nodes: Vec<P>,
    /// The execution-wide path-interning arena shared by all nodes.
    pub(crate) arena: SharedPathArena,
    /// The execution-wide shared flood ledger (broadcast-once records).
    pub(crate) ledger: SharedFloodLedger,
    /// The telemetry sink. Disabled by default: every emission site then
    /// costs one branch and constructs nothing.
    pub(crate) observer: ObserverHandle,
    /// Cooperative cancellation: adopted from the thread's ambient token
    /// ([`crate::cancel::install_ambient`]) at construction. Checked at the
    /// top of every step loop; `None` costs nothing.
    pub(crate) cancel: Option<CancelToken>,
}

impl<P: Protocol> Network<P> {
    /// Creates a network over `graph` with one protocol instance per node.
    ///
    /// `faulty` identifies the nodes controlled by the adversary; the
    /// declared fault tolerance passed to protocol hooks defaults to
    /// `faulty.len()` and can be overridden with [`Network::with_fault_bound`].
    ///
    /// # Panics
    ///
    /// Panics if the number of protocol instances differs from the number of
    /// graph nodes, or if a faulty node id is out of range.
    #[must_use]
    pub fn new(graph: Graph, model: CommModel, faulty: NodeSet, nodes: Vec<P>) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "need exactly one protocol instance per node"
        );
        assert!(
            faulty.iter().all(|v| graph.contains_node(v)),
            "faulty set contains a node outside the graph"
        );
        let f = faulty.len();
        Network {
            graph,
            model,
            faulty,
            f,
            nodes,
            arena: SharedPathArena::new(),
            ledger: SharedFloodLedger::new(),
            observer: ObserverHandle::disabled(),
            cancel: crate::cancel::ambient(),
        }
    }

    /// Whether the ambient cancellation token (if any) has fired. One
    /// relaxed load; `false` when no token is installed.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Overrides the declared fault tolerance `f` exposed to protocol hooks
    /// (by default it equals the number of actually-faulty nodes).
    #[must_use]
    pub fn with_fault_bound(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Attaches a telemetry sink: the run emits the deterministic structured
    /// event stream into it (the default is the disabled handle, which
    /// emits nothing and costs one branch per site).
    #[must_use]
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// The communication graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The set of faulty nodes.
    #[must_use]
    pub fn faulty(&self) -> &NodeSet {
        &self.faulty
    }

    /// Read access to a node's protocol instance.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.index()]
    }

    /// Runs the simulation under the **synchronous** regime for at most
    /// `max_rounds` rounds, driving faulty nodes through `adversary`. Stops
    /// early once every non-faulty node reports termination. Equivalent to
    /// [`Network::run_under`] with [`Regime::Synchronous`].
    pub fn run<A>(&mut self, adversary: &mut A, max_rounds: usize) -> RunReport
    where
        A: Adversary<P::Message>,
    {
        self.run_under(&Regime::Synchronous, adversary, max_rounds)
    }

    /// Runs the simulation under `regime` for at most `max_rounds` steps,
    /// driving faulty nodes through `adversary`. Stops early once every
    /// non-faulty node reports termination.
    ///
    /// Under the synchronous regime a step is a lockstep round (the original
    /// loop, unchanged). Under an asynchronous regime every protocol's
    /// `on_round` hook is still invoked once per step — with whatever subset
    /// of in-flight transmissions the scheduler released to that node, which
    /// may be empty — so regime-aware protocols can count steps against the
    /// fairness bound exposed by [`NodeContext::regime`].
    pub fn run_under<A>(
        &mut self,
        regime: &Regime,
        adversary: &mut A,
        max_rounds: usize,
    ) -> RunReport
    where
        A: Adversary<P::Message>,
    {
        if self.observer.enabled() {
            // The ledger's channel-event log exists only for the observer;
            // enabling it here keeps uninstrumented runs at one branch per
            // channel operation.
            self.ledger.set_event_log(true);
            self.observer.emit(|| Event::RunStart {
                n: self.nodes.len(),
                f: self.f,
                regime: format!("{regime:?}"),
            });
        }
        let report = match regime {
            Regime::Synchronous => self.run_synchronous(adversary, max_rounds),
            Regime::Asynchronous(config) => {
                self.run_asynchronous(regime, *config, None, adversary, max_rounds)
            }
            Regime::PartialSync { gst, pre, post } => self.run_asynchronous(
                regime,
                *post,
                Some((u64::from(*gst), *pre)),
                adversary,
                max_rounds,
            ),
        };
        if self.observer.enabled() {
            self.observer.emit(|| Event::RunEnd {
                rounds: report.trace.rounds(),
                arena_paths: self.arena.borrow().entry_count(),
                live_channels: self.ledger.borrow().live_channels(),
                allocated_channels: self.ledger.borrow().allocated_channels(),
            });
            self.ledger.set_event_log(false);
        }
        report
    }

    /// The lockstep loop: the synchronous regime's implementation, kept
    /// byte-identical to the pre-regime simulator.
    fn run_synchronous<A>(&mut self, adversary: &mut A, max_rounds: usize) -> RunReport
    where
        A: Adversary<P::Message>,
    {
        let mut trace = Trace::new();

        // Zero-clone delivery state, allocated once and reused across
        // rounds: a round's transmissions live exactly once in `buffer`, and
        // each node's inbox is a list of `u32` slots into it. Delivering a
        // broadcast to `deg(sender)` neighbors pushes indices, not message
        // clones, so the per-round delivery cost no longer scales with the
        // message size at all.
        let mut buffer: Vec<Delivery<P::Message>> = Vec::new();
        let mut slots: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];

        // Start-of-execution transmissions. Interference the adversary
        // applies at collection time is folded into the round the affected
        // transmissions would have been delivered in.
        let regime = Regime::Synchronous;
        let mut interference = RoundStats::default();
        let mut produced_at = Moment::Start;
        let mut pending =
            self.collect_outgoing(&regime, adversary, None, &buffer, &slots, &mut interference);

        for round_index in 0..max_rounds {
            if self.all_non_faulty_terminated() {
                break;
            }
            if self.cancel_requested() {
                self.observer.emit(|| Event::RunInterrupted {
                    step: round_index as u64,
                });
                break;
            }
            let round = Round::new(round_index as u64);
            self.observer.emit(|| Event::StepStart {
                step: round.value(),
            });
            let mut stats = self.deliver(pending, &mut buffer, &mut slots, produced_at, round);
            stats.absorb_interference(&interference);
            interference = RoundStats::default();
            trace.push_round(stats);
            produced_at = Moment::Step(round.value());
            pending = self.collect_outgoing(
                &regime,
                adversary,
                Some(round),
                &buffer,
                &slots,
                &mut interference,
            );
        }

        let outputs = self.nodes.iter().map(Protocol::output).collect();
        RunReport {
            outputs,
            all_non_faulty_terminated: self.all_non_faulty_terminated(),
            trace,
        }
    }

    /// The event-scheduled loop of the asynchronous and partial-synchrony
    /// regimes.
    ///
    /// Transmissions are appended once to an execution-wide buffer; each
    /// `(transmission, receiver)` pair becomes a delivery event scheduled
    /// `lag ∈ 1..=D` steps ahead by the regime's deterministic scheduler,
    /// clamped so per-edge FIFO order holds. Every step delivers the due
    /// events (in global transmission order per receiver) and runs every
    /// node's `on_round` hook, empty inbox or not.
    ///
    /// With `psync = Some((gst, pre))` the loop runs the partial-synchrony
    /// regime: a transmission whose earliest landing step is before `gst`
    /// and whose *sender* is in the `pre` hold-set is withheld from the
    /// schedule ring entirely and burst-released at step `gst`. Because a
    /// held sender has **all** of its pre-GST transmissions held, and held
    /// events release in global transmission (slot) order while the edge's
    /// FIFO clamp is advanced to `gst`, per-edge FIFO — and with it the
    /// flood fabric's same-first-message-per-key invariant — survives the
    /// burst. With `psync = None` (or `gst = 0`) this is exactly the
    /// asynchronous loop: the hold branch is never taken.
    fn run_asynchronous<A>(
        &mut self,
        regime: &Regime,
        config: lbc_model::AsyncRegime,
        psync: Option<(u64, lbc_model::AdversarialSchedule)>,
        adversary: &mut A,
        max_steps: usize,
    ) -> RunReport
    where
        A: Adversary<P::Message>,
    {
        let n = self.nodes.len();
        let mut trace = Trace::new();
        // The execution-wide transmission buffer: a message lives here once,
        // however many receivers it has and however spread out in time their
        // deliveries are.
        let mut buffer: Vec<Delivery<P::Message>> = Vec::new();
        // due[step % (D+1)] = events due at `step`, filled at enqueue time.
        // A lag is at most D, so a ring of D+1 step buckets always suffices.
        // Held pre-GST events live outside the ring (in `held`), so a large
        // GST does not demand a large ring.
        let horizon = config.delay as usize + 1;
        let mut due: Vec<Vec<(u32, u32)>> = vec![Vec::new(); horizon];
        // Per-edge FIFO clamp: the last step any delivery was scheduled for
        // on the (sender, receiver) edge.
        let mut edge_last: Vec<u64> = vec![0; n * n];
        let mut slots: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut stats_accum = RoundStats::default();
        // Pre-GST events withheld by the adversarial schedule, in global
        // transmission (slot) order, awaiting the burst at `gst`.
        let mut held: Vec<(u32, u32)> = Vec::new();

        let pending =
            self.collect_outgoing(regime, adversary, None, &buffer, &slots, &mut stats_accum);
        // Start-of-execution transmissions behave as if emitted at "step
        // −1": with the minimum lag of 1 they arrive at step 0, exactly as
        // under the synchronous regime.
        self.enqueue_async(
            &config,
            psync,
            pending,
            0,
            Moment::Start,
            &mut buffer,
            &mut due,
            &mut edge_last,
            &mut held,
            &mut stats_accum,
        );

        for step_index in 0..max_steps {
            if self.all_non_faulty_terminated() {
                break;
            }
            if self.cancel_requested() {
                self.observer.emit(|| Event::RunInterrupted {
                    step: step_index as u64,
                });
                break;
            }
            self.observer.emit(|| Event::StepStart {
                step: step_index as u64,
            });
            // Release this step's events into the per-node inboxes, in
            // global transmission (slot) order per receiver.
            for inbox in slots.iter_mut() {
                inbox.clear();
            }
            let bucket = step_index % horizon;
            let mut released = std::mem::take(&mut due[bucket]);
            let mut burst = 0usize;
            if let Some((gst, _)) = psync {
                if step_index as u64 == gst {
                    // The GST burst: every withheld pre-GST event lands now,
                    // merged into slot order with the step's fair deliveries.
                    burst = held.len();
                    released.append(&mut held);
                    if burst > 0 {
                        self.observer.emit(|| Event::BurstRelease {
                            step: step_index as u64,
                            count: burst,
                        });
                    }
                }
            }
            released.sort_unstable();
            let mut stats = std::mem::take(&mut stats_accum);
            stats.burst_deliveries += burst;
            for (slot, receiver) in released {
                slots[receiver as usize].push(slot);
                stats.deliveries += 1;
                self.observer.emit(|| Event::Delivery {
                    step: step_index as u64,
                    to: NodeId::new(receiver as usize),
                    from: buffer[slot as usize].from,
                    slot,
                    meta: buffer[slot as usize].message.meta(&self.arena),
                });
            }
            trace.push_round(stats);
            let round = Round::new(step_index as u64);
            let pending = self.collect_outgoing(
                regime,
                adversary,
                Some(round),
                &buffer,
                &slots,
                &mut stats_accum,
            );
            self.enqueue_async(
                &config,
                psync,
                pending,
                step_index as u64 + 1,
                Moment::Step(step_index as u64),
                &mut buffer,
                &mut due,
                &mut edge_last,
                &mut held,
                &mut stats_accum,
            );
        }

        let outputs = self.nodes.iter().map(Protocol::output).collect();
        RunReport {
            outputs,
            all_non_faulty_terminated: self.all_non_faulty_terminated(),
            trace,
        }
    }

    /// Applies the communication model to freshly collected transmissions
    /// and schedules one delivery event per `(transmission, receiver)` pair.
    /// `base` is the earliest step a lag-1 delivery may land on. Under
    /// partial synchrony (`psync = Some`), events of held senders with
    /// `base < gst` go to `held` instead of the ring, and the edge's FIFO
    /// clamp advances to `gst` so later fair deliveries on that edge cannot
    /// overtake the burst.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enqueue_async(
        &self,
        config: &lbc_model::AsyncRegime,
        psync: Option<(u64, lbc_model::AdversarialSchedule)>,
        pending: Vec<Vec<Outgoing<P::Message>>>,
        base: u64,
        produced_at: Moment,
        buffer: &mut Vec<Delivery<P::Message>>,
        due: &mut [Vec<(u32, u32)>],
        edge_last: &mut [u64],
        held: &mut Vec<(u32, u32)>,
        stats: &mut RoundStats,
    ) {
        let n = self.nodes.len();
        let horizon = due.len() as u64;
        let observer = &self.observer;
        let mut schedule = |slot: u32, from: NodeId, to: NodeId| {
            let edge = from.index() * n + to.index();
            if let Some((gst, pre)) = psync {
                if base < gst && pre.holds(from.index()) {
                    held.push((slot, to.index() as u32));
                    edge_last[edge] = edge_last[edge].max(gst);
                    observer.emit(|| Event::Held {
                        at: produced_at,
                        from,
                        to,
                        slot,
                    });
                    return;
                }
            }
            let lag = config
                .lag(from.index(), to.index(), n)
                .clamp(1, horizon - 1);
            // `base` is already the lag-1 landing step, so the extra lag
            // beyond 1 is added on top; the FIFO clamp keeps one edge's
            // deliveries in transmission order.
            let at = (base + (lag - 1)).max(edge_last[edge]);
            edge_last[edge] = at;
            due[(at % horizon) as usize].push((slot, to.index() as u32));
            observer.emit(|| Event::Scheduled {
                at: produced_at,
                from,
                to,
                lag,
                due: at,
                // Pending events across the whole due-ring plus the held
                // set, counting this one; computed only when observed.
                queue_depth: due.iter().map(Vec::len).sum::<usize>() + held.len(),
            });
        };
        for (sender_index, sender_pending) in pending.into_iter().enumerate() {
            let sender = NodeId::new(sender_index);
            let can_equivocate = self.model.allows_equivocation(sender);
            for outgoing in sender_pending {
                stats.transmissions += 1;
                let slot = u32::try_from(buffer.len()).expect("delivery buffer overflow");
                let is_broadcast = matches!(outgoing, Outgoing::Broadcast(_));
                match outgoing {
                    Outgoing::Unicast(target, message) if can_equivocate => {
                        if self.graph.has_edge(sender, target) {
                            buffer.push(Delivery {
                                from: sender,
                                message,
                            });
                            self.observer.emit(|| Event::Transmission {
                                at: produced_at,
                                from: sender,
                                slot,
                                broadcast: is_broadcast,
                                meta: buffer[slot as usize].message.meta(&self.arena),
                            });
                            schedule(slot, sender, target);
                        }
                    }
                    Outgoing::Broadcast(message) | Outgoing::Unicast(_, message) => {
                        buffer.push(Delivery {
                            from: sender,
                            message,
                        });
                        self.observer.emit(|| Event::Transmission {
                            at: produced_at,
                            from: sender,
                            slot,
                            broadcast: is_broadcast,
                            meta: buffer[slot as usize].message.meta(&self.arena),
                        });
                        for neighbor in self.graph.neighbors(sender) {
                            schedule(slot, sender, neighbor);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn all_non_faulty_terminated(&self) -> bool {
        self.graph
            .nodes()
            .filter(|v| !self.faulty.contains(*v))
            .all(|v| self.nodes[v.index()].has_terminated())
    }

    /// Runs every node's protocol hook for the given round (or the start
    /// hook when `round` is `None`), passing faulty nodes' output through the
    /// adversary. While observed, interference the adversary applies
    /// (tamper / omit / equivocate, measured by diffing honest against
    /// actual output) is added into `interference`. The diff clones the
    /// honest set and is quadratic in it, so it runs only under an enabled
    /// observer — unobserved runs keep the pre-telemetry hot path and
    /// report zero interference counts.
    pub(crate) fn collect_outgoing<A>(
        &mut self,
        regime: &Regime,
        adversary: &mut A,
        round: Option<Round>,
        buffer: &[Delivery<P::Message>],
        slots: &[Vec<u32>],
        interference: &mut RoundStats,
    ) -> Vec<Vec<Outgoing<P::Message>>>
    where
        A: Adversary<P::Message>,
    {
        let at = match round {
            None => Moment::Start,
            Some(r) => Moment::Step(r.value()),
        };
        let observing = self.observer.enabled();
        let mut all_outgoing = Vec::with_capacity(self.nodes.len());
        for (v, node) in self.nodes.iter_mut().enumerate() {
            let id = NodeId::new(v);
            let ctx = NodeContext {
                id,
                graph: &self.graph,
                f: self.f,
                regime,
                step: round,
                arena: &self.arena,
                ledger: &self.ledger,
                observer: &self.observer,
            };
            let inbox = Inbox::indexed(buffer, &slots[v]);
            let was_decided = observing && node.output().is_some();
            let honest = match round {
                None => node.on_start(&ctx),
                Some(r) => node.on_round(&ctx, r, inbox),
            };
            let outgoing = if self.faulty.contains(id) {
                if observing {
                    let actual = adversary.intercept(&ctx, round, honest.clone(), inbox);
                    let (tampered, omitted, equivocated) = interference_counts(&honest, &actual);
                    interference.tampered += tampered;
                    interference.omitted += omitted;
                    interference.equivocated += equivocated;
                    if tampered + omitted + equivocated > 0 {
                        self.observer.emit(|| Event::AdversaryAction {
                            at,
                            node: id,
                            tampered,
                            omitted,
                            equivocated,
                        });
                    }
                    actual
                } else {
                    adversary.intercept(&ctx, round, honest, inbox)
                }
            } else {
                honest
            };
            if observing && !was_decided {
                if let Some(value) = node.output() {
                    self.observer.emit(|| Event::NodeDecided {
                        at,
                        node: id,
                        value,
                        evidence: node.decision_evidence(),
                    });
                }
            }
            all_outgoing.push(outgoing);
        }
        // Protocol hooks open and retire ledger channels; translate the
        // ledger's internal log (enabled only while observing) into events.
        if observing {
            for channel_event in self.ledger.take_channel_events() {
                self.observer.emit(|| match channel_event {
                    ChannelEvent::Opened {
                        tag,
                        epoch,
                        channel,
                    } => Event::ChannelOpened {
                        tag,
                        epoch,
                        channel,
                    },
                    ChannelEvent::Retired {
                        tag,
                        epoch,
                        channel,
                    } => Event::ChannelRetired {
                        tag,
                        epoch,
                        channel,
                    },
                });
            }
        }
        all_outgoing
    }

    /// Applies the communication model to the pending transmissions: moves
    /// each message **once** into the shared round buffer and fills each
    /// node's inbox with slot indices, returning the round's statistics.
    /// No message is ever cloned, no matter how many neighbors receive it.
    ///
    /// Deliveries are ordered by sender id and, per sender, by transmission
    /// order (FIFO links).
    pub(crate) fn deliver(
        &self,
        pending: Vec<Vec<Outgoing<P::Message>>>,
        buffer: &mut Vec<Delivery<P::Message>>,
        slots: &mut [Vec<u32>],
        produced_at: Moment,
        round: Round,
    ) -> RoundStats {
        buffer.clear();
        for inbox in slots.iter_mut() {
            inbox.clear();
        }
        let step = round.value();
        let mut stats = RoundStats::default();
        for (sender_index, sender_pending) in pending.into_iter().enumerate() {
            let sender = NodeId::new(sender_index);
            let can_equivocate = self.model.allows_equivocation(sender);
            for outgoing in sender_pending {
                stats.transmissions += 1;
                let slot = u32::try_from(buffer.len()).expect("round buffer overflow");
                let is_broadcast = matches!(outgoing, Outgoing::Broadcast(_));
                match outgoing {
                    Outgoing::Unicast(target, message) if can_equivocate => {
                        // Point-to-point semantics: only the addressed
                        // neighbor receives the message (and only if it
                        // actually is a neighbor).
                        if self.graph.has_edge(sender, target) {
                            buffer.push(Delivery {
                                from: sender,
                                message,
                            });
                            self.observer.emit(|| Event::Transmission {
                                at: produced_at,
                                from: sender,
                                slot,
                                broadcast: is_broadcast,
                                meta: buffer[slot as usize].message.meta(&self.arena),
                            });
                            slots[target.index()].push(slot);
                            stats.deliveries += 1;
                            self.observer.emit(|| Event::Delivery {
                                step,
                                to: target,
                                from: sender,
                                slot,
                                meta: buffer[slot as usize].message.meta(&self.arena),
                            });
                        }
                    }
                    Outgoing::Broadcast(message) | Outgoing::Unicast(_, message) => {
                        // Local broadcast physics: the transmission is
                        // overheard by every neighbor, regardless of any
                        // intended addressee.
                        buffer.push(Delivery {
                            from: sender,
                            message,
                        });
                        self.observer.emit(|| Event::Transmission {
                            at: produced_at,
                            from: sender,
                            slot,
                            broadcast: is_broadcast,
                            meta: buffer[slot as usize].message.meta(&self.arena),
                        });
                        for neighbor in self.graph.neighbors(sender) {
                            slots[neighbor.index()].push(slot);
                            stats.deliveries += 1;
                            self.observer.emit(|| Event::Delivery {
                                step,
                                to: neighbor,
                                from: sender,
                                slot,
                                meta: buffer[slot as usize].message.meta(&self.arena),
                            });
                        }
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{honest_adversary, HonestAdversary};
    use crate::protocol::EchoOnce;
    use lbc_graph::generators;
    use lbc_model::Value;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn echo_nodes(graph: &Graph) -> Vec<EchoOnce> {
        graph
            .nodes()
            .map(|v| EchoOnce::new(Value::from(v.index() % 2 == 0)))
            .collect()
    }

    #[test]
    fn echo_run_terminates_and_counts_messages() {
        let graph = generators::cycle(4);
        let nodes = echo_nodes(&graph);
        let mut network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
        let report = network.run(&mut honest_adversary(), 10);
        assert!(report.all_non_faulty_terminated);
        // 4 broadcasts in the start step, delivered to 2 neighbors each.
        assert_eq!(report.trace.total_transmissions(), 4);
        assert_eq!(report.trace.total_deliveries(), 8);
        assert_eq!(report.trace.rounds(), 1);
        assert_eq!(report.output_of(n(0)), Some(Value::One));
        assert_eq!(report.output_of(n(1)), Some(Value::Zero));
    }

    #[test]
    fn each_node_hears_all_its_neighbors() {
        let graph = generators::complete(4);
        let nodes = echo_nodes(&graph);
        let mut network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
        let _ = network.run(&mut honest_adversary(), 10);
        for v in 0..4 {
            let heard = network.node(n(v)).heard();
            assert_eq!(heard.len(), 3, "node {v} should hear 3 neighbors");
        }
    }

    /// A probe protocol that unicasts distinct values to its two smallest
    /// neighbors, used to test equivocation enforcement.
    #[derive(Debug)]
    struct SplitSender {
        done: bool,
    }

    impl Protocol for SplitSender {
        type Message = Value;

        fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
            let neighbors: Vec<NodeId> = ctx.neighbors().iter().collect();
            vec![
                Outgoing::Unicast(neighbors[0], Value::Zero),
                Outgoing::Unicast(neighbors[1], Value::One),
            ]
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext<'_>,
            _round: Round,
            _inbox: Inbox<'_, Value>,
        ) -> Vec<Outgoing<Value>> {
            self.done = true;
            Vec::new()
        }

        fn output(&self) -> Option<Value> {
            if self.done {
                Some(Value::Zero)
            } else {
                None
            }
        }
    }

    /// A probe that records everything it hears and never sends.
    #[derive(Debug, Default)]
    struct Listener {
        heard: Vec<(NodeId, Value)>,
        done: bool,
    }

    impl Protocol for Listener {
        type Message = Value;

        fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
            Vec::new()
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext<'_>,
            _round: Round,
            inbox: Inbox<'_, Value>,
        ) -> Vec<Outgoing<Value>> {
            for d in inbox.iter() {
                self.heard.push((d.from, d.message));
            }
            self.done = true;
            Vec::new()
        }

        fn output(&self) -> Option<Value> {
            if self.done {
                Some(Value::Zero)
            } else {
                None
            }
        }
    }

    /// Under local broadcast, a unicast is overheard by every neighbor, so the
    /// "equivocation" of SplitSender is detected: both neighbors hear both
    /// values. Under point-to-point each neighbor hears only its own value.
    #[derive(Debug)]
    enum Probe {
        Split(SplitSender),
        Listen(Listener),
    }

    impl Protocol for Probe {
        type Message = Value;

        fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
            match self {
                Probe::Split(p) => p.on_start(ctx),
                Probe::Listen(p) => p.on_start(ctx),
            }
        }

        fn on_round(
            &mut self,
            ctx: &NodeContext<'_>,
            round: Round,
            inbox: Inbox<'_, Value>,
        ) -> Vec<Outgoing<Value>> {
            match self {
                Probe::Split(p) => p.on_round(ctx, round, inbox),
                Probe::Listen(p) => p.on_round(ctx, round, inbox),
            }
        }

        fn output(&self) -> Option<Value> {
            match self {
                Probe::Split(p) => p.output(),
                Probe::Listen(p) => p.output(),
            }
        }
    }

    fn probe_network(model: CommModel) -> Vec<Vec<(NodeId, Value)>> {
        // Triangle; node 0 is the split sender, nodes 1 and 2 listen.
        let graph = generators::complete(3);
        let nodes = vec![
            Probe::Split(SplitSender { done: false }),
            Probe::Listen(Listener::default()),
            Probe::Listen(Listener::default()),
        ];
        let mut network = Network::new(graph, model, NodeSet::new(), nodes);
        let _ = network.run(&mut HonestAdversary, 5);
        (1..3)
            .map(|i| match network.node(n(i)) {
                Probe::Listen(l) => l.heard.clone(),
                Probe::Split(_) => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn local_broadcast_overhears_unicasts() {
        let heard = probe_network(CommModel::LocalBroadcast);
        // Both listeners hear both transmissions of node 0.
        assert_eq!(heard[0].len(), 2);
        assert_eq!(heard[1].len(), 2);
        assert_eq!(heard[0], heard[1]);
    }

    #[test]
    fn point_to_point_delivers_unicasts_privately() {
        let heard = probe_network(CommModel::PointToPoint);
        assert_eq!(heard[0].len(), 1);
        assert_eq!(heard[1].len(), 1);
        assert_eq!(heard[0][0].1, Value::Zero);
        assert_eq!(heard[1][0].1, Value::One);
    }

    #[test]
    fn hybrid_model_only_lets_listed_nodes_equivocate() {
        // Node 0 equivocating: point-to-point behaviour.
        let graph = generators::complete(3);
        let nodes = vec![
            Probe::Split(SplitSender { done: false }),
            Probe::Listen(Listener::default()),
            Probe::Listen(Listener::default()),
        ];
        let mut network = Network::new(graph, CommModel::hybrid([n(0)]), NodeSet::new(), nodes);
        let _ = network.run(&mut HonestAdversary, 5);
        let heard1 = match network.node(n(1)) {
            Probe::Listen(l) => l.heard.clone(),
            Probe::Split(_) => unreachable!(),
        };
        assert_eq!(heard1.len(), 1);

        // Node 0 not in the equivocator list: overheard by everyone.
        let graph = generators::complete(3);
        let nodes = vec![
            Probe::Split(SplitSender { done: false }),
            Probe::Listen(Listener::default()),
            Probe::Listen(Listener::default()),
        ];
        let mut network = Network::new(graph, CommModel::hybrid([n(2)]), NodeSet::new(), nodes);
        let _ = network.run(&mut HonestAdversary, 5);
        let heard1 = match network.node(n(1)) {
            Probe::Listen(l) => l.heard.clone(),
            Probe::Split(_) => unreachable!(),
        };
        assert_eq!(heard1.len(), 2);
    }

    #[test]
    fn adversary_controls_only_faulty_nodes() {
        let graph = generators::complete(3);
        let nodes = echo_nodes(&graph);
        let faulty = NodeSet::singleton(n(0));
        let mut network = Network::new(graph, CommModel::LocalBroadcast, faulty, nodes);
        // Adversary silences the faulty node.
        let mut silence = |_ctx: &NodeContext<'_>,
                           _round: Option<Round>,
                           _honest: Vec<Outgoing<Value>>,
                           _inbox: Inbox<'_, Value>| Vec::new();
        let report = network.run(&mut silence, 5);
        assert!(report.all_non_faulty_terminated);
        // Nodes 1 and 2 hear only each other (the faulty node sent nothing).
        assert_eq!(network.node(n(1)).heard().len(), 1);
        assert_eq!(network.node(n(2)).heard().len(), 1);
        // The faulty node's instance still ran and heard its neighbors.
        assert_eq!(network.node(n(0)).heard().len(), 2);
    }

    #[test]
    fn with_fault_bound_overrides_declared_f() {
        let graph = generators::cycle(4);
        let nodes = echo_nodes(&graph);
        let network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes)
            .with_fault_bound(2);
        assert_eq!(network.f, 2);
    }

    /// A probe that transmits two ordered broadcasts at start and records
    /// every delivery as `(step, from, value)`.
    #[derive(Debug)]
    struct OrderProbe {
        steps: u64,
        heard: Vec<(u64, NodeId, Value)>,
        quiet: bool,
        done: bool,
    }

    impl OrderProbe {
        fn sender() -> Self {
            OrderProbe {
                steps: 0,
                heard: Vec::new(),
                quiet: false,
                done: false,
            }
        }

        fn listener() -> Self {
            OrderProbe {
                steps: 0,
                heard: Vec::new(),
                quiet: true,
                done: false,
            }
        }
    }

    impl Protocol for OrderProbe {
        type Message = Value;

        fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
            if self.quiet {
                Vec::new()
            } else {
                // Two transmissions in one step: per-edge FIFO must deliver
                // Zero before One at every receiver, whatever the lags.
                vec![
                    Outgoing::Broadcast(Value::Zero),
                    Outgoing::Broadcast(Value::One),
                ]
            }
        }

        fn on_round(
            &mut self,
            _ctx: &NodeContext<'_>,
            _round: Round,
            inbox: Inbox<'_, Value>,
        ) -> Vec<Outgoing<Value>> {
            let step = self.steps;
            self.steps += 1;
            for delivery in inbox.iter() {
                self.heard.push((step, delivery.from, delivery.message));
            }
            // Terminate late enough for every lag to play out.
            if step >= 12 {
                self.done = true;
            }
            Vec::new()
        }

        fn output(&self) -> Option<Value> {
            self.done.then_some(Value::Zero)
        }
    }

    fn async_regime(scheduler: lbc_model::SchedulerKind, delay: u32, seed: u64) -> Regime {
        Regime::Asynchronous(lbc_model::AsyncRegime {
            scheduler,
            delay,
            seed,
        })
    }

    #[test]
    fn async_lag_one_fifo_matches_the_synchronous_regime() {
        let make = || {
            let graph = generators::cycle(4);
            let nodes = echo_nodes(&graph);
            Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes)
        };
        let sync_report = make().run(&mut honest_adversary(), 10);
        let mut network = make();
        let regime = async_regime(lbc_model::SchedulerKind::Fifo, 1, 99);
        let async_report = network.run_under(&regime, &mut honest_adversary(), 10);
        assert_eq!(async_report.outputs, sync_report.outputs);
        assert_eq!(async_report.trace.rounds(), sync_report.trace.rounds());
        assert_eq!(
            async_report.trace.total_transmissions(),
            sync_report.trace.total_transmissions()
        );
        assert_eq!(
            async_report.trace.total_deliveries(),
            sync_report.trace.total_deliveries()
        );
    }

    #[test]
    fn async_deliveries_respect_fairness_and_per_edge_fifo() {
        for scheduler in lbc_model::SchedulerKind::all() {
            for seed in [0, 7, 991] {
                let delay = 4u32;
                let graph = generators::complete(3);
                let nodes = vec![
                    OrderProbe::sender(),
                    OrderProbe::listener(),
                    OrderProbe::listener(),
                ];
                let mut network =
                    Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
                let regime = async_regime(scheduler, delay, seed);
                let _ = network.run_under(&regime, &mut HonestAdversary, 40);
                for listener in [1, 2] {
                    let heard = &network.node(n(listener)).heard;
                    let from_sender: Vec<&(u64, NodeId, Value)> =
                        heard.iter().filter(|(_, from, _)| *from == n(0)).collect();
                    assert_eq!(
                        from_sender.len(),
                        2,
                        "{}/{seed}: listener {listener} missed a delivery",
                        scheduler.name()
                    );
                    // Eventual fairness: start transmissions land within the
                    // first `delay` steps.
                    for (step, _, _) in &from_sender {
                        assert!(
                            *step < u64::from(delay),
                            "{}/{seed}: delivery at step {step} breaks the bound",
                            scheduler.name()
                        );
                    }
                    // Per-edge FIFO: Zero (sent first) arrives no later than
                    // One, and when they share a step, in transmission order.
                    assert_eq!(from_sender[0].2, Value::Zero);
                    assert_eq!(from_sender[1].2, Value::One);
                    assert!(from_sender[0].0 <= from_sender[1].0);
                }
            }
        }
    }

    #[test]
    fn async_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let graph = generators::cycle(5);
            let nodes = echo_nodes(&graph);
            let mut network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
            let regime = async_regime(lbc_model::SchedulerKind::EdgeLag, 5, seed);
            let report = network.run_under(&regime, &mut honest_adversary(), 40);
            (
                report.outputs.clone(),
                report.trace.rounds(),
                report.trace.total_deliveries(),
            )
        };
        assert_eq!(run(3), run(3));
        assert_eq!(run(4), run(4));
    }

    fn psync_regime(
        gst: u32,
        hold: &[usize],
        scheduler: lbc_model::SchedulerKind,
        delay: u32,
        seed: u64,
    ) -> Regime {
        Regime::PartialSync {
            gst,
            pre: lbc_model::AdversarialSchedule::holding(hold),
            post: lbc_model::AsyncRegime {
                scheduler,
                delay,
                seed,
            },
        }
    }

    /// Runs an all-senders [`OrderProbe`] network under `regime` and returns
    /// the full per-node delivery log — every `(step, from, value)` at every
    /// node — plus the outputs and trace counters, i.e. the step-for-step
    /// observable behaviour of the run.
    #[allow(clippy::type_complexity)]
    fn probe_run_under(
        regime: &Regime,
    ) -> (
        Vec<Vec<(u64, NodeId, Value)>>,
        Vec<Option<Value>>,
        usize,
        usize,
    ) {
        let graph = generators::cycle(5);
        let nodes: Vec<OrderProbe> = graph.nodes().map(|_| OrderProbe::sender()).collect();
        let mut network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
        let report = network.run_under(regime, &mut HonestAdversary, 40);
        let heard = (0..5).map(|i| network.node(n(i)).heard.clone()).collect();
        (
            heard,
            report.outputs.clone(),
            report.trace.total_transmissions(),
            report.trace.total_deliveries(),
        )
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(48))]

        /// A partial-synchrony run with `gst = 0` IS the equivalent
        /// asynchronous run, step for step: with no pre-GST window the hold
        /// branch is unreachable whatever the hold-set, and the post-GST
        /// scheduler governs from step 0 on.
        #[test]
        fn psync_with_gst_zero_equals_the_asynchronous_run(
            kind in 0usize..3,
            delay in 1u32..6,
            seed in any::<u64>(),
            hold in 0u64..32,
        ) {
            let scheduler = lbc_model::SchedulerKind::all()[kind];
            let config = lbc_model::AsyncRegime { scheduler, delay, seed };
            let held: Vec<usize> = (0..5).filter(|i| hold & (1 << i) != 0).collect();
            let psync = Regime::PartialSync {
                gst: 0,
                pre: lbc_model::AdversarialSchedule::holding(&held),
                post: config,
            };
            prop_assert_eq!(
                probe_run_under(&psync),
                probe_run_under(&Regime::Asynchronous(config))
            );
        }
    }

    #[test]
    fn psync_holds_pre_gst_transmissions_and_bursts_them_at_gst() {
        let gst = 6u32;
        for scheduler in lbc_model::SchedulerKind::all() {
            for seed in [0, 7, 991] {
                let graph = generators::complete(3);
                let nodes = vec![
                    OrderProbe::sender(),
                    OrderProbe::listener(),
                    OrderProbe::listener(),
                ];
                let mut network =
                    Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
                let regime = psync_regime(gst, &[0], scheduler, 2, seed);
                let _ = network.run_under(&regime, &mut HonestAdversary, 40);
                for listener in [1, 2] {
                    let heard = &network.node(n(listener)).heard;
                    let from_sender: Vec<&(u64, NodeId, Value)> =
                        heard.iter().filter(|(_, from, _)| *from == n(0)).collect();
                    assert_eq!(
                        from_sender.len(),
                        2,
                        "{}/{seed}: listener {listener} missed a held delivery",
                        scheduler.name()
                    );
                    // Both start-of-execution transmissions of the held
                    // sender burst-arrive exactly at GST — never before
                    // (held) and never after (released into the gst step) —
                    // in per-edge FIFO order.
                    for (step, _, _) in &from_sender {
                        assert_eq!(
                            *step,
                            u64::from(gst),
                            "{}/{seed}: held delivery landed at step {step}, not at GST",
                            scheduler.name()
                        );
                    }
                    assert_eq!(from_sender[0].2, Value::Zero);
                    assert_eq!(from_sender[1].2, Value::One);
                }
            }
        }
    }

    #[test]
    fn psync_burst_does_not_overtake_later_sends_on_the_held_edge() {
        /// Sends `Zero` at start and `One` mid-run (step 4, straddling the
        /// GST-6 boundary for fairness bounds up to 3): whatever landing
        /// step the scheduler picks for `One`, per-edge FIFO demands the
        /// held `Zero` burst never arrives after it.
        #[derive(Debug)]
        struct LateSender {
            steps: u64,
            heard: Vec<(u64, NodeId, Value)>,
        }
        impl Protocol for LateSender {
            type Message = Value;
            fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
                vec![Outgoing::Broadcast(Value::Zero)]
            }
            fn on_round(
                &mut self,
                _ctx: &NodeContext<'_>,
                _round: Round,
                inbox: Inbox<'_, Value>,
            ) -> Vec<Outgoing<Value>> {
                let step = self.steps;
                self.steps += 1;
                for delivery in inbox.iter() {
                    self.heard.push((step, delivery.from, delivery.message));
                }
                if step == 4 {
                    vec![Outgoing::Broadcast(Value::One)]
                } else {
                    Vec::new()
                }
            }
            fn output(&self) -> Option<Value> {
                (self.steps > 20).then_some(Value::Zero)
            }
        }

        let gst = 6u32;
        for scheduler in lbc_model::SchedulerKind::all() {
            for seed in [3, 17, 401] {
                let graph = generators::complete(2);
                let nodes = (0..2)
                    .map(|_| LateSender {
                        steps: 0,
                        heard: Vec::new(),
                    })
                    .collect();
                let mut network =
                    Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
                let regime = psync_regime(gst, &[0], scheduler, 3, seed);
                let _ = network.run_under(&regime, &mut HonestAdversary, 40);
                let heard: Vec<&(u64, NodeId, Value)> = network
                    .node(n(1))
                    .heard
                    .iter()
                    .filter(|(_, from, _)| *from == n(0))
                    .collect();
                assert_eq!(
                    heard.len(),
                    2,
                    "{}/{seed}: listener missed a delivery from the held sender",
                    scheduler.name()
                );
                // The held start transmission bursts at GST…
                assert_eq!(heard[0].2, Value::Zero);
                assert_eq!(heard[0].0, u64::from(gst), "{}/{seed}", scheduler.name());
                // …and the mid-run transmission never overtakes it.
                assert_eq!(heard[1].2, Value::One);
                assert!(heard[1].0 >= heard[0].0, "{}/{seed}", scheduler.name());
            }
        }
    }

    #[test]
    fn psync_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let regime = psync_regime(7, &[1, 3], lbc_model::SchedulerKind::EdgeLag, 3, seed);
            probe_run_under(&regime)
        };
        assert_eq!(run(3), run(3));
        assert_eq!(run(4), run(4));
        assert_ne!(
            run(3).0,
            probe_run_under(&async_regime(lbc_model::SchedulerKind::EdgeLag, 3, 3)).0
        );
    }

    #[test]
    #[should_panic(expected = "one protocol instance per node")]
    fn mismatched_protocol_count_panics() {
        let graph = generators::cycle(4);
        let nodes = vec![EchoOnce::new(Value::One)];
        let _ = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), nodes);
    }

    #[test]
    fn unicast_to_non_neighbor_is_dropped_under_point_to_point() {
        #[derive(Debug)]
        struct BadSender {
            done: bool,
        }
        impl Protocol for BadSender {
            type Message = Value;
            fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
                // Node 0 and node 2 are not adjacent in a path graph 0-1-2.
                vec![Outgoing::Unicast(NodeId::new(2), Value::One)]
            }
            fn on_round(
                &mut self,
                _ctx: &NodeContext<'_>,
                _round: Round,
                _inbox: Inbox<'_, Value>,
            ) -> Vec<Outgoing<Value>> {
                self.done = true;
                Vec::new()
            }
            fn output(&self) -> Option<Value> {
                self.done.then_some(Value::Zero)
            }
        }
        let graph = generators::path_graph(3);
        // Wrap in Probe-like enum is unnecessary; use BadSender for node 0 and
        // listeners elsewhere via a homogeneous protocol: reuse BadSender for
        // all nodes (only node 0's message matters).
        let nodes = vec![
            BadSender { done: false },
            BadSender { done: false },
            BadSender { done: false },
        ];
        let mut network = Network::new(graph, CommModel::PointToPoint, NodeSet::new(), nodes);
        let report = network.run(&mut HonestAdversary, 5);
        // Node 0's unicast to the non-neighbor 2 is dropped; node 1 and 2 also
        // attempted the same unicast (node 1 IS adjacent to 2, so one delivery).
        assert_eq!(report.trace.total_deliveries(), 1);
    }
}
