//! # lbc-sim
//!
//! Deterministic synchronous round-based network simulator for the
//! local-broadcast Byzantine consensus workspace.
//!
//! The simulator executes a [`Protocol`] instance per node of an undirected
//! communication graph in lock-step rounds. The communication model
//! ([`lbc_model::CommModel`]) governs what the *physical layer* does with a
//! transmission:
//!
//! * **local broadcast** — every transmission is delivered identically to all
//!   neighbors of the sender, no matter whom it was "addressed" to;
//! * **point-to-point** — unicasts reach only their target, broadcasts reach
//!   every neighbor, and a (faulty) sender may therefore equivocate;
//! * **hybrid** — only the listed equivocators get point-to-point behaviour,
//!   everyone else is overheard as under local broadcast.
//!
//! Faulty nodes are driven by an [`Adversary`], which intercepts the outgoing
//! messages the faulty node's protocol instance would have sent and may
//! replace them arbitrarily. The *model constraints are enforced by the
//! network*, not trusted to the adversary: a non-equivocating faulty node's
//! unicasts are still overheard by all of its neighbors.
//!
//! # Example
//!
//! ```
//! use lbc_graph::generators;
//! use lbc_model::{CommModel, NodeSet, Value};
//! use lbc_sim::{honest_adversary, EchoOnce, Network};
//!
//! // Three nodes on a triangle, everyone floods its input once and decides it.
//! let graph = generators::complete(3);
//! let protocols: Vec<EchoOnce> = graph
//!     .nodes()
//!     .map(|v| EchoOnce::new(Value::from(v.index() % 2 == 0)))
//!     .collect();
//! let mut network = Network::new(graph, CommModel::LocalBroadcast, NodeSet::new(), protocols);
//! let report = network.run(&mut honest_adversary(), 10);
//! assert!(report.all_non_faulty_terminated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversary;
pub mod cancel;
mod chain;
mod network;
mod protocol;
mod trace;

pub use adversary::{honest_adversary, Adversary, HonestAdversary};
pub use cancel::CancelToken;
pub use chain::{ChainStats, InstanceReport};
pub use network::{Network, RunReport};
pub use protocol::{
    ByzantineMessage, Delivery, EchoOnce, Inbox, InboxIter, NodeContext, Outgoing, Protocol,
};
pub use trace::{RoundStats, Trace, TraceSummary};

// Telemetry vocabulary, re-exported so downstream crates (protocols,
// adversaries, the lower-bound engine) can implement `MessageView` or attach
// observers without depending on `lbc-telemetry` directly.
pub use lbc_telemetry::{Event, MessageView, Moment, MsgMeta, Observer, ObserverHandle, Recorder};
