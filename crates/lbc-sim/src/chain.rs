//! Chained multi-instance execution: one long-lived [`Network`] deciding
//! many consecutive consensus instances.
//!
//! A one-shot [`Network::run_under`] pays the per-execution setup — arena
//! interning, disjoint-path plans, ledger channels — for a single decision.
//! A repeated-consensus service decides continuously: [`Network::run_chain`]
//! re-arms the same network with a fresh protocol set per instance while
//! keeping the [`lbc_model::SharedPathArena`] and the
//! [`lbc_model::SharedFloodLedger`]'s pair-path memos warm across instances.
//!
//! # Isolation and overlap
//!
//! Instance `k + 1` starts while instance `k`'s flood tail is still in
//! flight. Two mechanisms keep the instances from contaminating each other:
//!
//! * **Ledger sessions** — [`lbc_model::FloodLedger::begin_session`] offsets
//!   every `(tag, epoch)` channel name the new instance derives past the
//!   previous instance's epochs, so each instance records into its own
//!   channels and the two-epoch retirement rule reclaims channel storage one
//!   whole instance behind the front (≤ 2 live / ≤ 3 allocated per tag).
//! * **Routing by instance** — every buffered transmission is stamped with
//!   the instance that emitted it, and deliveries are routed to that
//!   instance's node set only. The previous instance's nodes survive as a
//!   *retiring* set exactly until their in-flight events quiesce; a stale
//!   message can therefore never reach the new instance's protocol state.
//!
//! Per-edge FIFO clamps carry across the boundary (the physical channel is
//! shared), which preserves the flood fabric's same-first-message invariant
//! and keeps every delivery within the regime's fairness bound `D` of its
//! transmission — the chained schedule is a conforming schedule, so
//! schedule-invariant protocols decide exactly as they would one-shot.

use lbc_model::{AdversarialSchedule, AsyncRegime, Regime, Round, Value};
use lbc_telemetry::Moment;

use crate::adversary::Adversary;
use crate::network::Network;
use crate::protocol::{Delivery, Inbox, NodeContext, Outgoing, Protocol};
use crate::trace::RoundStats;

/// Per-instance outcome of a chained run.
///
/// `steps` is the instance-local step count until termination (or budget
/// exhaustion); `transmissions`/`deliveries` are attributed to the instance
/// that *emitted* them, so a flood tail draining during the next instance
/// still counts against its own instance.
#[derive(Debug, Clone, Default)]
pub struct InstanceReport {
    /// Decided output per node at instance end (`None` = undecided).
    pub outputs: Vec<Option<Value>>,
    /// Whether every non-faulty node terminated within the step budget.
    pub all_non_faulty_terminated: bool,
    /// Instance-local steps until termination or budget.
    pub steps: usize,
    /// Transmissions emitted by this instance (including its drain tail).
    pub transmissions: usize,
    /// Deliveries of this instance's transmissions.
    pub deliveries: usize,
}

/// Whole-chain accounting: resource high-water marks proving that channel
/// retirement and the retiring-set drain actually reclaim state, plus the
/// amortized-arena evidence.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainStats {
    /// Most ledger channels concurrently live at any instance boundary.
    pub max_live_channels: usize,
    /// Most channel slots ever allocated (live + recycled).
    pub max_allocated_channels: usize,
    /// Largest per-tag live channel count (the two-epoch bound holds iff
    /// this stays ≤ 2).
    pub max_live_per_tag: usize,
    /// Most distinct tags with a live channel.
    pub live_tags: usize,
    /// Arena entries at chain end — flat across instances when path plans
    /// amortize (the same graph re-interns to the same entries).
    pub arena_paths: usize,
    /// Steps in which a retiring instance's tail was still draining.
    pub drained_steps: usize,
}

/// The previous instance's node set draining its synchronous tail.
struct SyncRetiring<P: Protocol> {
    nodes: Vec<P>,
    pending: Vec<Vec<Outgoing<P::Message>>>,
    round: u64,
    report: usize,
}

/// The previous instance's node set draining its event-scheduled tail.
struct AsyncRetiring<P: Protocol> {
    nodes: Vec<P>,
    /// Global step the instance started at (its local step origin).
    start: u64,
    report: usize,
}

/// Event-loop state of a chained asynchronous / partial-synchrony run,
/// persisting across instance boundaries.
struct AsyncChainState<P: Protocol> {
    config: AsyncRegime,
    pre: Option<AdversarialSchedule>,
    /// The execution-wide transmission buffer (append-only across the whole
    /// chain; slots are stable identifiers).
    buffer: Vec<Delivery<P::Message>>,
    /// Emitting instance per buffer slot: deliveries route to that
    /// instance's node set only.
    owner: Vec<u32>,
    due: Vec<Vec<(u32, u32)>>,
    edge_last: Vec<u64>,
    /// Held pre-GST events of the *current* instance.
    held: Vec<(u32, u32)>,
    slots_cur: Vec<Vec<u32>>,
    slots_ret: Vec<Vec<u32>>,
    retiring: Option<AsyncRetiring<P>>,
    /// Next global step to execute.
    global: u64,
    /// Global step the current instance started at.
    cur_start: u64,
    /// Report index (= instance index) of the current instance.
    cur_report: usize,
    /// The current instance's absolute GST step.
    gst_abs: u64,
}

/// Runs one node set's protocol hooks against its inbox slots, with faulty
/// nodes driven by the adversary — [`Network::collect_outgoing`] for a node
/// set that is not `self.nodes` (the retiring set). Interference telemetry
/// is not diffed here; chained runs execute with the observer disabled.
#[allow(clippy::too_many_arguments)]
fn collect_from<P: Protocol, A: Adversary<P::Message>>(
    nodes: &mut [P],
    net: &Network<P>,
    regime: &Regime,
    adversary: &mut A,
    round: Option<Round>,
    buffer: &[Delivery<P::Message>],
    slots: &[Vec<u32>],
) -> Vec<Vec<Outgoing<P::Message>>> {
    let mut all = Vec::with_capacity(nodes.len());
    for (v, node) in nodes.iter_mut().enumerate() {
        let id = lbc_model::NodeId::new(v);
        let ctx = NodeContext {
            id,
            graph: &net.graph,
            f: net.f,
            regime,
            step: round,
            arena: &net.arena,
            ledger: &net.ledger,
            observer: &net.observer,
        };
        let inbox = Inbox::indexed(buffer, &slots[v]);
        let honest = match round {
            None => node.on_start(&ctx),
            Some(r) => node.on_round(&ctx, r, inbox),
        };
        let outgoing = if net.faulty.contains(id) {
            adversary.intercept(&ctx, round, honest, inbox)
        } else {
            honest
        };
        all.push(outgoing);
    }
    all
}

impl<P: Protocol> Network<P> {
    /// Runs `instances` consecutive protocol instances over this one
    /// long-lived network under `regime`, re-arming via `next` — called with
    /// the instance index (from 1; instance 0 runs the constructor-supplied
    /// node set) and returning one fresh protocol per node.
    ///
    /// Each instance gets at most `max_steps_per_instance` steps. Instance
    /// `k + 1` starts while instance `k`'s flood tail drains (see the
    /// [module docs](self) for the isolation argument); the arena and the
    /// ledger's pair-path memos stay warm across instances.
    ///
    /// # Panics
    ///
    /// Panics if `next` returns the wrong number of protocol instances.
    pub fn run_chain<A, F>(
        &mut self,
        regime: &Regime,
        adversary: &mut A,
        max_steps_per_instance: usize,
        instances: usize,
        next: F,
    ) -> (Vec<InstanceReport>, ChainStats)
    where
        A: Adversary<P::Message>,
        F: FnMut(u64) -> Vec<P>,
    {
        match regime {
            Regime::Synchronous => {
                self.run_chain_sync(adversary, max_steps_per_instance, instances, next)
            }
            Regime::Asynchronous(_) | Regime::PartialSync { .. } => {
                self.run_chain_async(regime, adversary, max_steps_per_instance, instances, next)
            }
        }
    }

    /// Folds the ledger's and arena's current occupancy into the chain
    /// high-water marks; sampled at every instance end.
    fn note_ledger(&self, stats: &mut ChainStats) {
        let ledger = self.ledger.borrow();
        stats.max_live_channels = stats.max_live_channels.max(ledger.live_channels());
        stats.max_allocated_channels = stats
            .max_allocated_channels
            .max(ledger.allocated_channels());
        stats.max_live_per_tag = stats
            .max_live_per_tag
            .max(ledger.max_live_channels_per_tag());
        stats.live_tags = stats.live_tags.max(ledger.live_tag_count());
        stats.arena_paths = self.arena.borrow().entry_count();
    }

    /// One lockstep round of the retiring set's tail: deliver its pending
    /// transmissions to its own nodes, collect their forwards, and drop the
    /// set once it goes quiet.
    fn sync_drain_round<A>(
        &mut self,
        retiring: &mut Option<SyncRetiring<P>>,
        adversary: &mut A,
        buffer: &mut Vec<Delivery<P::Message>>,
        slots: &mut [Vec<u32>],
        reports: &mut [InstanceReport],
        stats: &mut ChainStats,
    ) where
        A: Adversary<P::Message>,
    {
        let Some(r) = retiring.as_mut() else { return };
        stats.drained_steps += 1;
        let round = Round::new(r.round);
        let round_stats = self.deliver(
            std::mem::take(&mut r.pending),
            buffer,
            slots,
            Moment::Step(r.round),
            round,
        );
        let regime = Regime::Synchronous;
        let pending = collect_from(
            &mut r.nodes,
            self,
            &regime,
            adversary,
            Some(round),
            buffer,
            slots,
        );
        r.round += 1;
        let report = r.report;
        let quiet = pending.iter().all(Vec::is_empty);
        r.pending = pending;
        reports[report].transmissions += round_stats.transmissions;
        reports[report].deliveries += round_stats.deliveries;
        if quiet {
            *retiring = None;
        }
    }

    /// The synchronous chained loop: the lockstep round structure of
    /// [`Network::run`], with the finishing instance's undelivered final
    /// round handed to a retiring set that drains (on its own buffer, to its
    /// own nodes) alongside the next instance's rounds.
    fn run_chain_sync<A, F>(
        &mut self,
        adversary: &mut A,
        max_rounds: usize,
        instances: usize,
        mut next: F,
    ) -> (Vec<InstanceReport>, ChainStats)
    where
        A: Adversary<P::Message>,
        F: FnMut(u64) -> Vec<P>,
    {
        let regime = Regime::Synchronous;
        let n = self.nodes.len();
        let mut reports: Vec<InstanceReport> = Vec::with_capacity(instances);
        let mut stats = ChainStats::default();
        let mut buffer: Vec<Delivery<P::Message>> = Vec::new();
        let mut slots: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut ret_buffer: Vec<Delivery<P::Message>> = Vec::new();
        let mut ret_slots: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut retiring: Option<SyncRetiring<P>> = None;
        // The finishing instance's undelivered final-round transmissions.
        let mut tail: Vec<Vec<Outgoing<P::Message>>> = Vec::new();
        let mut tail_round = 0u64;
        let mut cancelled = false;

        for instance in 0..instances {
            if instance > 0 {
                // At most two node sets are ever live: flush any tail from
                // two instances back before re-arming. The cap is a
                // backstop; flood tails quiesce in O(diameter) rounds.
                let mut guard = 0usize;
                while retiring.is_some() && guard < max_rounds {
                    self.sync_drain_round(
                        &mut retiring,
                        adversary,
                        &mut ret_buffer,
                        &mut ret_slots,
                        &mut reports,
                        &mut stats,
                    );
                    guard += 1;
                }
                retiring = None;
                self.ledger.begin_session();
                let fresh = next(instance as u64);
                assert_eq!(
                    fresh.len(),
                    n,
                    "chained instance needs one protocol per node"
                );
                let old = std::mem::replace(&mut self.nodes, fresh);
                if tail.iter().any(|p| !p.is_empty()) {
                    retiring = Some(SyncRetiring {
                        nodes: old,
                        pending: std::mem::take(&mut tail),
                        round: tail_round,
                        report: instance - 1,
                    });
                } else {
                    tail.clear();
                }
            }
            reports.push(InstanceReport::default());
            let mut interference = RoundStats::default();
            let mut pending =
                self.collect_outgoing(&regime, adversary, None, &buffer, &slots, &mut interference);
            let mut local = 0u64;
            while (local as usize) < max_rounds {
                if self.all_non_faulty_terminated() {
                    break;
                }
                if self.cancel_requested() {
                    cancelled = true;
                    break;
                }
                self.sync_drain_round(
                    &mut retiring,
                    adversary,
                    &mut ret_buffer,
                    &mut ret_slots,
                    &mut reports,
                    &mut stats,
                );
                let round = Round::new(local);
                let round_stats =
                    self.deliver(pending, &mut buffer, &mut slots, Moment::Step(local), round);
                reports[instance].transmissions += round_stats.transmissions;
                reports[instance].deliveries += round_stats.deliveries;
                pending = self.collect_outgoing(
                    &regime,
                    adversary,
                    Some(round),
                    &buffer,
                    &slots,
                    &mut interference,
                );
                local += 1;
            }
            reports[instance].steps = local as usize;
            reports[instance].outputs = self.nodes.iter().map(Protocol::output).collect();
            reports[instance].all_non_faulty_terminated = self.all_non_faulty_terminated();
            self.note_ledger(&mut stats);
            if cancelled {
                break;
            }
            tail = pending;
            tail_round = local;
        }
        // Flush the second-to-last instance's tail so its accounting closes;
        // the final instance's own tail is dropped exactly as one-shot runs
        // drop theirs at termination.
        let mut guard = 0usize;
        while retiring.is_some() && !cancelled && guard < max_rounds {
            self.sync_drain_round(
                &mut retiring,
                adversary,
                &mut ret_buffer,
                &mut ret_slots,
                &mut reports,
                &mut stats,
            );
            guard += 1;
        }
        (reports, stats)
    }

    /// One step of the chained event loop: release the due bucket (plus the
    /// current instance's GST burst when due), route deliveries to the
    /// owning instance's node set, collect + enqueue the retiring set's
    /// forwards and then the current set's, and retire the old set once its
    /// events quiesce.
    fn async_chain_step<A>(
        &mut self,
        st: &mut AsyncChainState<P>,
        regime: &Regime,
        adversary: &mut A,
        reports: &mut [InstanceReport],
        stats: &mut ChainStats,
    ) where
        A: Adversary<P::Message>,
    {
        let horizon = st.due.len() as u64;
        for inbox in st.slots_cur.iter_mut() {
            inbox.clear();
        }
        for inbox in st.slots_ret.iter_mut() {
            inbox.clear();
        }
        let bucket = (st.global % horizon) as usize;
        let mut released = std::mem::take(&mut st.due[bucket]);
        if st.pre.is_some() && st.global == st.gst_abs && !st.held.is_empty() {
            released.append(&mut st.held);
        }
        released.sort_unstable();
        for (slot, receiver) in released {
            if st.owner[slot as usize] as usize == st.cur_report {
                st.slots_cur[receiver as usize].push(slot);
                reports[st.cur_report].deliveries += 1;
            } else if let Some(r) = st.retiring.as_ref() {
                st.slots_ret[receiver as usize].push(slot);
                reports[r.report].deliveries += 1;
            }
            // Events of a hard-dropped instance (backstop only) fall through.
        }
        if let Some(r) = st.retiring.as_mut() {
            stats.drained_steps += 1;
            let round = Round::new(st.global - r.start);
            let outgoing = collect_from(
                &mut r.nodes,
                self,
                regime,
                adversary,
                Some(round),
                &st.buffer,
                &st.slots_ret,
            );
            let mut rs = RoundStats::default();
            // A retiring tail is past its instance's hold window: fair
            // scheduling only.
            self.enqueue_async(
                &st.config,
                None,
                outgoing,
                st.global + 1,
                Moment::Step(st.global),
                &mut st.buffer,
                &mut st.due,
                &mut st.edge_last,
                &mut st.held,
                &mut rs,
            );
            st.owner.resize(st.buffer.len(), r.report as u32);
            reports[r.report].transmissions += rs.transmissions;
        }
        if let Some(r) = st.retiring.as_ref() {
            let report = r.report as u32;
            let alive = st
                .due
                .iter()
                .flatten()
                .any(|(slot, _)| st.owner[*slot as usize] == report);
            if !alive {
                st.retiring = None;
            }
        }
        let round = Round::new(st.global - st.cur_start);
        let mut interference = RoundStats::default();
        let outgoing = self.collect_outgoing(
            regime,
            adversary,
            Some(round),
            &st.buffer,
            &st.slots_cur,
            &mut interference,
        );
        let mut rs = RoundStats::default();
        let psync = st.pre.map(|p| (st.gst_abs, p));
        self.enqueue_async(
            &st.config,
            psync,
            outgoing,
            st.global + 1,
            Moment::Step(st.global),
            &mut st.buffer,
            &mut st.due,
            &mut st.edge_last,
            &mut st.held,
            &mut rs,
        );
        st.owner.resize(st.buffer.len(), st.cur_report as u32);
        reports[st.cur_report].transmissions += rs.transmissions;
        st.global += 1;
    }

    /// The event-scheduled chained loop (asynchronous and partial-synchrony
    /// regimes): one continuous global step counter, an append-only buffer
    /// whose slots are stamped with their emitting instance, and per-edge
    /// FIFO clamps carried across instance boundaries. GST is
    /// instance-relative: each instance's hold window covers its own first
    /// `gst` steps and bursts exactly as a one-shot run's would.
    fn run_chain_async<A, F>(
        &mut self,
        regime: &Regime,
        adversary: &mut A,
        max_steps: usize,
        instances: usize,
        mut next: F,
    ) -> (Vec<InstanceReport>, ChainStats)
    where
        A: Adversary<P::Message>,
        F: FnMut(u64) -> Vec<P>,
    {
        let (config, gst, pre) = match regime {
            Regime::Asynchronous(config) => (*config, 0u64, None),
            Regime::PartialSync { gst, pre, post } => (*post, u64::from(*gst), Some(*pre)),
            Regime::Synchronous => unreachable!("sync chains run in run_chain_sync"),
        };
        let n = self.nodes.len();
        let horizon = config.delay as usize + 1;
        let mut reports: Vec<InstanceReport> = Vec::with_capacity(instances);
        let mut stats = ChainStats::default();
        let mut st = AsyncChainState::<P> {
            config,
            pre,
            buffer: Vec::new(),
            owner: Vec::new(),
            due: vec![Vec::new(); horizon],
            edge_last: vec![0; n * n],
            held: Vec::new(),
            slots_cur: vec![Vec::new(); n],
            slots_ret: vec![Vec::new(); n],
            retiring: None,
            global: 0,
            cur_start: 0,
            cur_report: 0,
            gst_abs: gst,
        };
        let mut cancelled = false;

        for instance in 0..instances {
            if instance > 0 {
                // Flush the two-instances-back tail entirely before
                // re-arming; the cap is a backstop.
                let mut guard = 0usize;
                while st.retiring.is_some() && guard < max_steps {
                    self.async_chain_step(&mut st, regime, adversary, &mut reports, &mut stats);
                    guard += 1;
                }
                if let Some(r) = st.retiring.take() {
                    let stale = r.report as u32;
                    for bucket in st.due.iter_mut() {
                        bucket.retain(|(slot, _)| st.owner[*slot as usize] != stale);
                    }
                }
                // An instance that ended before its GST (possible only for
                // protocols that terminate early) bursts its held events at
                // the handover step; their edges' clamps held no other
                // traffic (all of a held sender's pre-GST events are held),
                // so resetting them to the handover step preserves FIFO and
                // restores the fairness bound for the next instance.
                if !st.held.is_empty() {
                    let bucket = (st.global % horizon as u64) as usize;
                    for (slot, to) in std::mem::take(&mut st.held) {
                        let from = st.buffer[slot as usize].from.index();
                        st.edge_last[from * n + to as usize] = st.global;
                        st.due[bucket].push((slot, to));
                    }
                }
                self.ledger.begin_session();
                let fresh = next(instance as u64);
                assert_eq!(
                    fresh.len(),
                    n,
                    "chained instance needs one protocol per node"
                );
                let old = std::mem::replace(&mut self.nodes, fresh);
                let previous = (instance - 1) as u32;
                let has_tail = st
                    .due
                    .iter()
                    .flatten()
                    .any(|(slot, _)| st.owner[*slot as usize] == previous);
                if has_tail {
                    st.retiring = Some(AsyncRetiring {
                        nodes: old,
                        start: st.cur_start,
                        report: instance - 1,
                    });
                }
                st.cur_start = st.global;
                st.cur_report = instance;
                st.gst_abs = st.global + gst;
            }
            reports.push(InstanceReport::default());
            for inbox in st.slots_cur.iter_mut() {
                inbox.clear();
            }
            let mut interference = RoundStats::default();
            let pending = self.collect_outgoing(
                regime,
                adversary,
                None,
                &st.buffer,
                &st.slots_cur,
                &mut interference,
            );
            let mut rs = RoundStats::default();
            let psync = st.pre.map(|p| (st.gst_abs, p));
            // Start transmissions behave as if emitted one step before the
            // instance's first executed step, exactly as one-shot runs do.
            self.enqueue_async(
                &st.config,
                psync,
                pending,
                st.global,
                Moment::Start,
                &mut st.buffer,
                &mut st.due,
                &mut st.edge_last,
                &mut st.held,
                &mut rs,
            );
            st.owner.resize(st.buffer.len(), instance as u32);
            reports[instance].transmissions += rs.transmissions;

            loop {
                if (st.global - st.cur_start) as usize >= max_steps {
                    break;
                }
                if self.all_non_faulty_terminated() {
                    break;
                }
                if self.cancel_requested() {
                    cancelled = true;
                    break;
                }
                self.async_chain_step(&mut st, regime, adversary, &mut reports, &mut stats);
            }
            reports[instance].steps = (st.global - st.cur_start) as usize;
            reports[instance].outputs = self.nodes.iter().map(Protocol::output).collect();
            reports[instance].all_non_faulty_terminated = self.all_non_faulty_terminated();
            self.note_ledger(&mut stats);
            if cancelled {
                break;
            }
        }
        // Close the second-to-last instance's accounting; the final
        // instance's own tail is dropped as one-shot runs drop theirs.
        let mut guard = 0usize;
        while st.retiring.is_some() && !cancelled && guard < max_steps {
            self.async_chain_step(&mut st, regime, adversary, &mut reports, &mut stats);
            guard += 1;
        }
        (reports, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::honest_adversary;
    use crate::protocol::EchoOnce;
    use lbc_graph::generators;
    use lbc_model::{CommModel, NodeSet, SchedulerKind};

    fn echo_nodes(n: usize, flip: bool) -> Vec<EchoOnce> {
        (0..n)
            .map(|v| EchoOnce::new(Value::from((v % 2 == 0) ^ flip)))
            .collect()
    }

    fn network(n: usize) -> Network<EchoOnce> {
        Network::new(
            generators::cycle(n),
            CommModel::LocalBroadcast,
            NodeSet::new(),
            echo_nodes(n, false),
        )
    }

    #[test]
    fn sync_chain_decides_every_instance() {
        let mut net = network(5);
        let (reports, stats) =
            net.run_chain(&Regime::Synchronous, &mut honest_adversary(), 10, 4, |k| {
                echo_nodes(5, k % 2 == 1)
            });
        assert_eq!(reports.len(), 4);
        for (k, report) in reports.iter().enumerate() {
            assert!(report.all_non_faulty_terminated, "instance {k}");
            // EchoOnce decides its own input; node 0's input alternates
            // with the instance parity.
            assert_eq!(
                report.outputs[0],
                Some(Value::from(k % 2 == 0)),
                "instance {k}"
            );
            assert!(report.transmissions > 0, "instance {k} sent nothing");
        }
        assert!(stats.max_live_per_tag <= 2);
    }

    #[test]
    fn chain_of_one_matches_the_one_shot_run() {
        for regime in [
            Regime::Synchronous,
            Regime::Asynchronous(AsyncRegime {
                scheduler: SchedulerKind::EdgeLag,
                delay: 3,
                seed: 17,
            }),
        ] {
            let one_shot = network(6).run_under(&regime, &mut honest_adversary(), 30);
            let mut net = network(6);
            let (reports, _) =
                net.run_chain(&regime, &mut honest_adversary(), 30, 1, |_| unreachable!());
            assert_eq!(reports.len(), 1);
            assert_eq!(reports[0].outputs, one_shot.outputs, "{regime:?}");
            assert_eq!(
                reports[0].all_non_faulty_terminated,
                one_shot.all_non_faulty_terminated
            );
            assert_eq!(
                reports[0].transmissions,
                one_shot.trace.total_transmissions(),
                "{regime:?}"
            );
        }
    }

    #[test]
    fn async_chain_isolates_instances_across_schedulers() {
        for scheduler in SchedulerKind::all() {
            let regime = Regime::Asynchronous(AsyncRegime {
                scheduler,
                delay: 4,
                seed: 99,
            });
            let mut net = network(5);
            let (reports, _) = net.run_chain(&regime, &mut honest_adversary(), 40, 6, |k| {
                echo_nodes(5, k % 2 == 1)
            });
            for (k, report) in reports.iter().enumerate() {
                assert!(
                    report.all_non_faulty_terminated,
                    "{}: instance {k} did not terminate",
                    scheduler.name()
                );
                assert_eq!(
                    report.outputs[0],
                    Some(Value::from(k % 2 == 0)),
                    "{}",
                    scheduler.name()
                );
            }
        }
    }

    #[test]
    fn psync_chain_is_deterministic_and_bursts_leftover_holds() {
        // EchoOnce terminates before the hold window ends, so every
        // boundary exercises the leftover-held burst path (held events
        // release at handover, edge clamps reset); the chain must stay
        // deterministic and decide every instance.
        let regime = Regime::PartialSync {
            gst: 4,
            pre: AdversarialSchedule::holding(&[0]),
            post: AsyncRegime {
                scheduler: SchedulerKind::Fifo,
                delay: 2,
                seed: 5,
            },
        };
        let run = || {
            let mut net = network(5);
            let (reports, _) = net.run_chain(&regime, &mut honest_adversary(), 40, 3, |k| {
                echo_nodes(5, k % 2 == 1)
            });
            reports
                .iter()
                .map(|r| {
                    (
                        r.outputs.clone(),
                        r.all_non_faulty_terminated,
                        r.steps,
                        r.transmissions,
                        r.deliveries,
                    )
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first.len(), 3);
        for (k, (outputs, terminated, ..)) in first.iter().enumerate() {
            assert!(terminated, "instance {k}");
            assert_eq!(outputs[0], Some(Value::from(k % 2 == 0)), "instance {k}");
        }
        assert_eq!(first, run());
    }
}
