//! Execution traces: round and message accounting.

use lbc_model::json::{FromJson, Json, JsonError, ToJson};

/// Per-round statistics recorded by the simulator.
///
/// Besides the message-complexity counters, each round quantifies the fault
/// pressure the adversary applied: how many honest transmissions were
/// altered, suppressed, or outnumbered by injected conflicts, and how many
/// deliveries arrived via the partial-synchrony GST burst. The adversary
/// counters are computed by diffing each faulty node's honest outgoing set
/// against what its adversary actually transmitted, so they are exact and
/// regime-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Number of transmissions performed in this round (one broadcast or one
    /// unicast counts as one transmission).
    pub transmissions: usize,
    /// Number of message deliveries in this round (a broadcast to `d`
    /// neighbors counts as `d` deliveries).
    pub deliveries: usize,
    /// Honest transmissions whose payload the adversary altered in place.
    pub tampered: usize,
    /// Honest transmissions the adversary suppressed.
    pub omitted: usize,
    /// Conflicting transmissions the adversary injected beyond the honest
    /// set (equivocation pressure).
    pub equivocated: usize,
    /// Deliveries that arrived via the held-then-burst release at GST.
    pub burst_deliveries: usize,
}

impl RoundStats {
    /// Adds the adversary-interference counters of `other` into `self`
    /// (message-complexity counters are untouched). The engines tally
    /// interference at collection time and fold it into the round the
    /// affected transmissions would have been delivered in.
    pub fn absorb_interference(&mut self, other: &RoundStats) {
        self.tampered += other.tampered;
        self.omitted += other.omitted;
        self.equivocated += other.equivocated;
        self.burst_deliveries += other.burst_deliveries;
    }
}

/// The whole-run totals of a [`Trace`], in one flat record.
///
/// This is the per-run statistics surface consumed by result stores (the
/// campaign report aggregates one `TraceSummary` per scenario) without
/// holding on to the full per-round breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Number of rounds executed.
    pub rounds: usize,
    /// Total transmissions over the whole execution.
    pub transmissions: usize,
    /// Total deliveries over the whole execution.
    pub deliveries: usize,
    /// Total honest transmissions tampered with by the adversary.
    pub tampered: usize,
    /// Total honest transmissions omitted by the adversary.
    pub omitted: usize,
    /// Total conflicting transmissions injected beyond the honest sets.
    pub equivocated: usize,
    /// Total deliveries released by held-then-burst schedules at GST.
    pub burst_deliveries: usize,
}

impl ToJson for TraceSummary {
    fn to_json(&self) -> Json {
        Json::object([
            ("rounds", self.rounds.to_json()),
            ("transmissions", self.transmissions.to_json()),
            ("deliveries", self.deliveries.to_json()),
            ("tampered", self.tampered.to_json()),
            ("omitted", self.omitted.to_json()),
            ("equivocated", self.equivocated.to_json()),
            ("burst_deliveries", self.burst_deliveries.to_json()),
        ])
    }
}

impl FromJson for TraceSummary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("trace summary missing '{key}'"),
            })
        };
        // The adversary counters post-date the original three-field summary;
        // reports written before they existed parse with zeros so that
        // `lbc campaign diff` keeps accepting old baselines.
        let optional = |key: &str| match value.get(key) {
            Some(v) => usize::from_json(v),
            None => Ok(0),
        };
        Ok(TraceSummary {
            rounds: usize::from_json(field("rounds")?)?,
            transmissions: usize::from_json(field("transmissions")?)?,
            deliveries: usize::from_json(field("deliveries")?)?,
            tampered: optional("tampered")?,
            omitted: optional("omitted")?,
            equivocated: optional("equivocated")?,
            burst_deliveries: optional("burst_deliveries")?,
        })
    }
}

/// The accumulated trace of one simulation run.
///
/// The experiment harness uses traces to regenerate the paper's complexity
/// claims: rounds for Theorem 5.6's `O(n)` bound, transmissions/deliveries
/// for message-complexity comparisons between Algorithm 1, Algorithm 2 and
/// the point-to-point baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    rounds: Vec<RoundStats>,
}

impl ToJson for RoundStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("transmissions", self.transmissions.to_json()),
            ("deliveries", self.deliveries.to_json()),
            ("tampered", self.tampered.to_json()),
            ("omitted", self.omitted.to_json()),
            ("equivocated", self.equivocated.to_json()),
            ("burst_deliveries", self.burst_deliveries.to_json()),
        ])
    }
}

impl FromJson for RoundStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value.get(key).ok_or_else(|| JsonError {
                message: format!("round stats missing '{key}'"),
            })
        };
        // Adversary counters default to 0 for pre-telemetry round records.
        let optional = |key: &str| match value.get(key) {
            Some(v) => usize::from_json(v),
            None => Ok(0),
        };
        Ok(RoundStats {
            transmissions: usize::from_json(field("transmissions")?)?,
            deliveries: usize::from_json(field("deliveries")?)?,
            tampered: optional("tampered")?,
            omitted: optional("omitted")?,
            equivocated: optional("equivocated")?,
            burst_deliveries: optional("burst_deliveries")?,
        })
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        self.rounds.to_json()
    }
}

impl FromJson for Trace {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Trace {
            rounds: Vec::<RoundStats>::from_json(value)?,
        })
    }
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends the statistics of one round.
    pub fn push_round(&mut self, stats: RoundStats) {
        self.rounds.push(stats);
    }

    /// Number of rounds executed.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Per-round statistics, in execution order.
    #[must_use]
    pub fn round_stats(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Total transmissions over the whole execution.
    #[must_use]
    pub fn total_transmissions(&self) -> usize {
        self.rounds.iter().map(|r| r.transmissions).sum()
    }

    /// Total deliveries over the whole execution.
    #[must_use]
    pub fn total_deliveries(&self) -> usize {
        self.rounds.iter().map(|r| r.deliveries).sum()
    }

    /// The whole-run totals as one flat record.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            rounds: self.rounds(),
            transmissions: self.total_transmissions(),
            deliveries: self.total_deliveries(),
            tampered: self.rounds.iter().map(|r| r.tampered).sum(),
            omitted: self.rounds.iter().map(|r| r.omitted).sum(),
            equivocated: self.rounds.iter().map(|r| r.equivocated).sum(),
            burst_deliveries: self.rounds.iter().map(|r| r.burst_deliveries).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut trace = Trace::new();
        assert_eq!(trace.rounds(), 0);
        trace.push_round(RoundStats {
            transmissions: 3,
            deliveries: 6,
            ..RoundStats::default()
        });
        trace.push_round(RoundStats {
            transmissions: 1,
            deliveries: 2,
            ..RoundStats::default()
        });
        assert_eq!(trace.rounds(), 2);
        assert_eq!(trace.total_transmissions(), 4);
        assert_eq!(trace.total_deliveries(), 8);
        assert_eq!(trace.round_stats()[0].transmissions, 3);
    }

    #[test]
    fn json_roundtrip() {
        let mut trace = Trace::new();
        trace.push_round(RoundStats {
            transmissions: 2,
            deliveries: 4,
            ..RoundStats::default()
        });
        let json = trace.to_json().to_string();
        let back = Trace::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn summary_flattens_totals_and_roundtrips() {
        let mut trace = Trace::new();
        trace.push_round(RoundStats {
            transmissions: 3,
            deliveries: 6,
            ..RoundStats::default()
        });
        trace.push_round(RoundStats {
            transmissions: 1,
            deliveries: 2,
            ..RoundStats::default()
        });
        let summary = trace.summary();
        assert_eq!(summary.rounds, 2);
        assert_eq!(summary.transmissions, 4);
        assert_eq!(summary.deliveries, 8);
        let json = summary.to_json().to_string();
        let back = TraceSummary::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
    }
}
