//! The protocol interface executed by the simulator.

use std::fmt::Debug;

use lbc_graph::Graph;
use lbc_model::{NodeId, NodeSet, Regime, Round, SharedFloodLedger, SharedPathArena, Value};
use lbc_telemetry::{MessageView, ObserverHandle};

/// Static, per-node context handed to every protocol hook.
///
/// Every node knows the communication graph `G` (a standing assumption of
/// the paper), its own identity, and the declared fault tolerance. The
/// context also carries the execution's shared [`SharedPathArena`], against
/// which message `PathId`s are interned and resolved, and the shared
/// [`SharedFloodLedger`] — the broadcast-once flood fabric the ledger-backed
/// flood engines collapse their per-node state into. The simulator owns one
/// arena and one ledger per run. The [`Regime`] the execution runs under is
/// exposed too: regime-aware protocols read the eventual-fairness bound from
/// it (e.g. to place an asynchronous decision horizon), while round-based
/// protocols can ignore it.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// The communication graph (known to all nodes).
    pub graph: &'a Graph,
    /// The declared maximum number of Byzantine faults `f`.
    pub f: usize,
    /// The execution regime deliveries are scheduled under.
    pub regime: &'a Regime,
    /// The scheduler step this callback runs at: `None` for the
    /// start-of-execution call, `Some(r)` for round/step `r`. Together with
    /// `regime` this makes adversaries *scheduler-aware*: a strategy can
    /// read where it stands relative to the regime's stabilization time and
    /// straddle the GST boundary deliberately.
    pub step: Option<Round>,
    /// The execution-wide path-interning arena.
    pub arena: &'a SharedPathArena,
    /// The execution-wide shared flood ledger.
    pub ledger: &'a SharedFloodLedger,
    /// The execution's telemetry sink. Disabled by default everywhere; when
    /// a sink is attached the engines emit the deterministic event stream
    /// and protocols may emit protocol-level events of their own.
    pub observer: &'a ObserverHandle,
}

impl<'a> NodeContext<'a> {
    /// The neighbors of this node in the communication graph.
    #[must_use]
    pub fn neighbors(&self) -> NodeSet {
        self.graph.neighbor_set(self.id)
    }

    /// The number of nodes `n` in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }
}

/// An outgoing transmission produced by a protocol (or an adversary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing<M> {
    /// Transmit `M` to all neighbors. Under every communication model this
    /// reaches every neighbor identically.
    Broadcast(M),
    /// Address `M` to a single neighbor. Under the point-to-point model (or
    /// for an equivocating faulty node under the hybrid model) only the
    /// target receives it; under local broadcast the transmission is
    /// physically overheard by **all** neighbors regardless of the address.
    Unicast(NodeId, M),
}

impl<M> Outgoing<M> {
    /// The payload carried by this transmission.
    pub fn message(&self) -> &M {
        match self {
            Outgoing::Broadcast(m) | Outgoing::Unicast(_, m) => m,
        }
    }
}

/// A message delivered to a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// The neighbor that transmitted the message. Links authenticate the
    /// sender: "when a message m sent by node u is received by node v, node v
    /// knows that m was sent by node u".
    pub from: NodeId,
    /// The payload.
    pub message: M,
}

/// A zero-clone view over the messages delivered to one node this round.
///
/// The round's transmissions live **once** in the network's round buffer;
/// an inbox addresses one node's deliveries either directly (a plain slice,
/// used by tests and standalone flood drivers) or as indices into the shared
/// buffer (the simulator's delivery path, which therefore never clones a
/// message per neighbor — under local broadcast a single broadcast used to
/// be cloned `deg(sender)` times).
#[derive(Debug)]
pub struct Inbox<'a, M> {
    buffer: &'a [Delivery<M>],
    slots: InboxSlots<'a>,
}

// Manual impls: an inbox is two shared references, copyable regardless of
// whether `M` itself is (the derive would demand `M: Copy`).
impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Inbox<'_, M> {}

#[derive(Debug, Clone, Copy)]
enum InboxSlots<'a> {
    /// The node's deliveries are exactly the buffer.
    All,
    /// Indices into the shared round buffer, in delivery order.
    Indexed(&'a [u32]),
}

impl<'a, M> Inbox<'a, M> {
    /// An inbox whose deliveries are exactly `deliveries`, in order.
    #[must_use]
    pub fn direct(deliveries: &'a [Delivery<M>]) -> Self {
        Inbox {
            buffer: deliveries,
            slots: InboxSlots::All,
        }
    }

    /// An inbox of `slots` indices into the shared round `buffer`.
    #[must_use]
    pub fn indexed(buffer: &'a [Delivery<M>], slots: &'a [u32]) -> Self {
        Inbox {
            buffer,
            slots: InboxSlots::Indexed(slots),
        }
    }

    /// Number of deliveries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.slots {
            InboxSlots::All => self.buffer.len(),
            InboxSlots::Indexed(slots) => slots.len(),
        }
    }

    /// Whether nothing was delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the deliveries in delivery order.
    #[must_use]
    pub fn iter(&self) -> InboxIter<'a, M> {
        match self.slots {
            InboxSlots::All => InboxIter::All(self.buffer.iter()),
            InboxSlots::Indexed(slots) => InboxIter::Indexed {
                buffer: self.buffer,
                slots: slots.iter(),
            },
        }
    }

    /// Iterates `(slot, delivery)` pairs, where `slot` identifies the
    /// transmission in the round's shared buffer. Every receiver of the same
    /// broadcast sees the same slot, which is what lets shared-fabric
    /// consumers cache per-broadcast work by slot for the round (see
    /// `lbc_model::FloodLedger`). For a [`Inbox::direct`] inbox the slot is
    /// the position in the slice — only unique within that inbox, so
    /// slot-keyed caches must verify before trusting an entry.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (u32, &'a Delivery<M>)> + use<'a, M> {
        let buffer = self.buffer;
        match self.slots {
            InboxSlots::All => IndexedIter::All(buffer.iter().enumerate()),
            InboxSlots::Indexed(slots) => IndexedIter::Indexed {
                buffer,
                slots: slots.iter(),
            },
        }
    }
}

enum IndexedIter<'a, M> {
    All(std::iter::Enumerate<std::slice::Iter<'a, Delivery<M>>>),
    Indexed {
        buffer: &'a [Delivery<M>],
        slots: std::slice::Iter<'a, u32>,
    },
}

impl<'a, M> Iterator for IndexedIter<'a, M> {
    type Item = (u32, &'a Delivery<M>);

    fn next(&mut self) -> Option<(u32, &'a Delivery<M>)> {
        match self {
            IndexedIter::All(iter) => iter
                .next()
                .map(|(position, delivery)| (position as u32, delivery)),
            IndexedIter::Indexed { buffer, slots } => {
                slots.next().map(|&slot| (slot, &buffer[slot as usize]))
            }
        }
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = &'a Delivery<M>;
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = &'a Delivery<M>;
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`]'s deliveries.
#[derive(Debug)]
pub enum InboxIter<'a, M> {
    /// Direct slice iteration.
    All(std::slice::Iter<'a, Delivery<M>>),
    /// Indexed iteration through the shared round buffer.
    Indexed {
        /// The shared round buffer.
        buffer: &'a [Delivery<M>],
        /// Remaining slot indices.
        slots: std::slice::Iter<'a, u32>,
    },
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = &'a Delivery<M>;

    fn next(&mut self) -> Option<&'a Delivery<M>> {
        match self {
            InboxIter::All(iter) => iter.next(),
            InboxIter::Indexed { buffer, slots } => {
                slots.next().map(|&slot| &buffer[slot as usize])
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            InboxIter::All(iter) => iter.size_hint(),
            InboxIter::Indexed { slots, .. } => slots.size_hint(),
        }
    }
}

/// A node-local protocol executed by the simulator in synchronous rounds.
///
/// The round structure is: `on_start` runs before round 0 and returns the
/// initial transmissions; those are delivered at round 0, when `on_round` is
/// called with the inbox; its return value is delivered at round 1; and so
/// on. The simulator stops when every non-faulty node reports
/// [`Protocol::has_terminated`] (or a round limit is hit).
pub trait Protocol {
    /// The message type exchanged by this protocol. The [`MessageView`]
    /// bound lets the instrumented engines describe any protocol's traffic
    /// (value, relay path, observed origin) without knowing the protocol.
    type Message: Clone + Eq + Debug + MessageView;

    /// Called once before the first round; returns the initial transmissions.
    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Self::Message>>;

    /// Called every round with the messages delivered this round; returns the
    /// transmissions for the next round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Round,
        inbox: Inbox<'_, Self::Message>,
    ) -> Vec<Outgoing<Self::Message>>;

    /// The decided output, once the node has decided.
    fn output(&self) -> Option<Value>;

    /// Whether this node has finished executing. Defaults to "has decided".
    fn has_terminated(&self) -> bool {
        self.output().is_some()
    }

    /// The `(origin, value)` evidence the node's decision rests on, once
    /// decided. Protocols with a meaningful witness override this — the
    /// asynchronous flood protocol returns its κ-witnessed reliable
    /// receptions (each backed by `f + 1` internally-disjoint paths) — and
    /// the telemetry layer attaches it to the `NodeDecided` event so that a
    /// post-mortem can say *what* a node decided on, not just what it
    /// decided. Defaults to no evidence.
    fn decision_evidence(&self) -> Vec<(NodeId, Value)> {
        Vec::new()
    }
}

/// Messages that a Byzantine adversary knows how to corrupt generically.
///
/// Concrete adversary strategies in `lbc-adversary` are written against this
/// trait so that they work for every protocol in the workspace without
/// depending on the protocol crates.
pub trait ByzantineMessage: Clone {
    /// Returns a tampered variant of the message (e.g. with its binary value
    /// flipped). Returning `self.clone()` is allowed when the message has
    /// nothing meaningful to tamper with.
    fn tampered(&self) -> Self;
}

/// A minimal built-in protocol used for simulator self-tests and examples:
/// each node broadcasts its input value once and decides its own input.
///
/// It is **not** a consensus protocol — it exists so that `lbc-sim` can be
/// exercised and documented without depending on `lbc-consensus`.
#[derive(Debug, Clone)]
pub struct EchoOnce {
    input: Value,
    echoed: Vec<(NodeId, Value)>,
    decided: Option<Value>,
}

impl EchoOnce {
    /// Creates an echo node with the given input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        EchoOnce {
            input,
            echoed: Vec::new(),
            decided: None,
        }
    }

    /// The values received from neighbors, in delivery order.
    #[must_use]
    pub fn heard(&self) -> &[(NodeId, Value)] {
        &self.echoed
    }
}

impl Protocol for EchoOnce {
    type Message = Value;

    fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
        vec![Outgoing::Broadcast(self.input)]
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext<'_>,
        _round: Round,
        inbox: Inbox<'_, Value>,
    ) -> Vec<Outgoing<Value>> {
        for delivery in inbox.iter() {
            self.echoed.push((delivery.from, delivery.message));
        }
        self.decided = Some(self.input);
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

impl ByzantineMessage for Value {
    fn tampered(&self) -> Self {
        self.flipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn node_context_exposes_graph_facts() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let observer = ObserverHandle::disabled();
        let ctx = NodeContext {
            id: NodeId::new(2),
            graph: &graph,
            f: 1,
            regime: &Regime::Synchronous,
            step: None,
            arena: &arena,
            ledger: &ledger,
            observer: &observer,
        };
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.neighbors().len(), 2);
        assert!(ctx.neighbors().contains(NodeId::new(1)));
    }

    #[test]
    fn outgoing_message_accessor() {
        let b: Outgoing<Value> = Outgoing::Broadcast(Value::One);
        let u: Outgoing<Value> = Outgoing::Unicast(NodeId::new(3), Value::Zero);
        assert_eq!(*b.message(), Value::One);
        assert_eq!(*u.message(), Value::Zero);
    }

    #[test]
    fn value_tampering_flips() {
        assert_eq!(Value::One.tampered(), Value::Zero);
        assert_eq!(Value::Zero.tampered(), Value::One);
    }

    #[test]
    fn echo_once_decides_its_own_input() {
        let graph = generators::complete(3);
        let arena = SharedPathArena::new();
        let ledger = SharedFloodLedger::new();
        let observer = ObserverHandle::disabled();
        let ctx = NodeContext {
            id: NodeId::new(0),
            graph: &graph,
            f: 0,
            regime: &Regime::Synchronous,
            step: None,
            arena: &arena,
            ledger: &ledger,
            observer: &observer,
        };
        let mut node = EchoOnce::new(Value::One);
        assert!(!node.has_terminated());
        let out = node.on_start(&ctx);
        assert_eq!(out.len(), 1);
        let _ = node.on_round(
            &ctx,
            Round::ZERO,
            Inbox::direct(&[Delivery {
                from: NodeId::new(1),
                message: Value::Zero,
            }]),
        );
        assert_eq!(node.output(), Some(Value::One));
        assert_eq!(node.heard(), &[(NodeId::new(1), Value::Zero)]);
        assert!(node.has_terminated());
    }
}
