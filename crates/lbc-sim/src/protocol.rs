//! The protocol interface executed by the simulator.

use std::fmt::Debug;

use lbc_graph::Graph;
use lbc_model::{NodeId, NodeSet, Round, SharedPathArena, Value};

/// Static, per-node context handed to every protocol hook.
///
/// Every node knows the communication graph `G` (a standing assumption of
/// the paper), its own identity, and the declared fault tolerance. The
/// context also carries the execution's shared [`SharedPathArena`], against
/// which message `PathId`s are interned and resolved — the simulator owns
/// one arena per run and every node's flood state indexes into it.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext<'a> {
    /// This node's identifier.
    pub id: NodeId,
    /// The communication graph (known to all nodes).
    pub graph: &'a Graph,
    /// The declared maximum number of Byzantine faults `f`.
    pub f: usize,
    /// The execution-wide path-interning arena.
    pub arena: &'a SharedPathArena,
}

impl<'a> NodeContext<'a> {
    /// The neighbors of this node in the communication graph.
    #[must_use]
    pub fn neighbors(&self) -> NodeSet {
        self.graph.neighbor_set(self.id)
    }

    /// The number of nodes `n` in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }
}

/// An outgoing transmission produced by a protocol (or an adversary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing<M> {
    /// Transmit `M` to all neighbors. Under every communication model this
    /// reaches every neighbor identically.
    Broadcast(M),
    /// Address `M` to a single neighbor. Under the point-to-point model (or
    /// for an equivocating faulty node under the hybrid model) only the
    /// target receives it; under local broadcast the transmission is
    /// physically overheard by **all** neighbors regardless of the address.
    Unicast(NodeId, M),
}

impl<M> Outgoing<M> {
    /// The payload carried by this transmission.
    pub fn message(&self) -> &M {
        match self {
            Outgoing::Broadcast(m) | Outgoing::Unicast(_, m) => m,
        }
    }
}

/// A message delivered to a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// The neighbor that transmitted the message. Links authenticate the
    /// sender: "when a message m sent by node u is received by node v, node v
    /// knows that m was sent by node u".
    pub from: NodeId,
    /// The payload.
    pub message: M,
}

/// A node-local protocol executed by the simulator in synchronous rounds.
///
/// The round structure is: `on_start` runs before round 0 and returns the
/// initial transmissions; those are delivered at round 0, when `on_round` is
/// called with the inbox; its return value is delivered at round 1; and so
/// on. The simulator stops when every non-faulty node reports
/// [`Protocol::has_terminated`] (or a round limit is hit).
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Message: Clone + Eq + Debug;

    /// Called once before the first round; returns the initial transmissions.
    fn on_start(&mut self, ctx: &NodeContext<'_>) -> Vec<Outgoing<Self::Message>>;

    /// Called every round with the messages delivered this round; returns the
    /// transmissions for the next round.
    fn on_round(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Round,
        inbox: &[Delivery<Self::Message>],
    ) -> Vec<Outgoing<Self::Message>>;

    /// The decided output, once the node has decided.
    fn output(&self) -> Option<Value>;

    /// Whether this node has finished executing. Defaults to "has decided".
    fn has_terminated(&self) -> bool {
        self.output().is_some()
    }
}

/// Messages that a Byzantine adversary knows how to corrupt generically.
///
/// Concrete adversary strategies in `lbc-adversary` are written against this
/// trait so that they work for every protocol in the workspace without
/// depending on the protocol crates.
pub trait ByzantineMessage: Clone {
    /// Returns a tampered variant of the message (e.g. with its binary value
    /// flipped). Returning `self.clone()` is allowed when the message has
    /// nothing meaningful to tamper with.
    fn tampered(&self) -> Self;
}

/// A minimal built-in protocol used for simulator self-tests and examples:
/// each node broadcasts its input value once and decides its own input.
///
/// It is **not** a consensus protocol — it exists so that `lbc-sim` can be
/// exercised and documented without depending on `lbc-consensus`.
#[derive(Debug, Clone)]
pub struct EchoOnce {
    input: Value,
    echoed: Vec<(NodeId, Value)>,
    decided: Option<Value>,
}

impl EchoOnce {
    /// Creates an echo node with the given input.
    #[must_use]
    pub fn new(input: Value) -> Self {
        EchoOnce {
            input,
            echoed: Vec::new(),
            decided: None,
        }
    }

    /// The values received from neighbors, in delivery order.
    #[must_use]
    pub fn heard(&self) -> &[(NodeId, Value)] {
        &self.echoed
    }
}

impl Protocol for EchoOnce {
    type Message = Value;

    fn on_start(&mut self, _ctx: &NodeContext<'_>) -> Vec<Outgoing<Value>> {
        vec![Outgoing::Broadcast(self.input)]
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext<'_>,
        _round: Round,
        inbox: &[Delivery<Value>],
    ) -> Vec<Outgoing<Value>> {
        for delivery in inbox {
            self.echoed.push((delivery.from, delivery.message));
        }
        self.decided = Some(self.input);
        Vec::new()
    }

    fn output(&self) -> Option<Value> {
        self.decided
    }
}

impl ByzantineMessage for Value {
    fn tampered(&self) -> Self {
        self.flipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;

    #[test]
    fn node_context_exposes_graph_facts() {
        let graph = generators::cycle(5);
        let arena = SharedPathArena::new();
        let ctx = NodeContext {
            id: NodeId::new(2),
            graph: &graph,
            f: 1,
            arena: &arena,
        };
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.neighbors().len(), 2);
        assert!(ctx.neighbors().contains(NodeId::new(1)));
    }

    #[test]
    fn outgoing_message_accessor() {
        let b: Outgoing<Value> = Outgoing::Broadcast(Value::One);
        let u: Outgoing<Value> = Outgoing::Unicast(NodeId::new(3), Value::Zero);
        assert_eq!(*b.message(), Value::One);
        assert_eq!(*u.message(), Value::Zero);
    }

    #[test]
    fn value_tampering_flips() {
        assert_eq!(Value::One.tampered(), Value::Zero);
        assert_eq!(Value::Zero.tampered(), Value::One);
    }

    #[test]
    fn echo_once_decides_its_own_input() {
        let graph = generators::complete(3);
        let arena = SharedPathArena::new();
        let ctx = NodeContext {
            id: NodeId::new(0),
            graph: &graph,
            f: 0,
            arena: &arena,
        };
        let mut node = EchoOnce::new(Value::One);
        assert!(!node.has_terminated());
        let out = node.on_start(&ctx);
        assert_eq!(out.len(), 1);
        let _ = node.on_round(
            &ctx,
            Round::ZERO,
            &[Delivery {
                from: NodeId::new(1),
                message: Value::Zero,
            }],
        );
        assert_eq!(node.output(), Some(Value::One));
        assert_eq!(node.heard(), &[(NodeId::new(1), Value::Zero)]);
        assert!(node.has_terminated());
    }
}
