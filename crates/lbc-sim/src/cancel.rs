//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a shared atomic flag: a watchdog (or any external
//! monitor) calls [`CancelToken::cancel`], and [`Network::run_under`]'s step
//! loops observe the flag at the top of every round/step and stop early,
//! returning whatever partial trace the run accumulated so far. Normal runs
//! pay one relaxed atomic load per step; uncancelled runs are byte-identical
//! to runs without a token installed.
//!
//! Tokens reach the network **ambiently**: callers that construct networks
//! several layers down (the campaign executor drives algorithm runners that
//! build their own [`Network`]s) install a token on the current thread with
//! [`install_ambient`], and every network constructed on that thread while
//! the returned guard lives picks it up. This keeps every runner signature
//! unchanged while still threading cancellation through all step loops.
//!
//! [`Network::run_under`]: crate::Network::run_under
//! [`Network`]: crate::Network

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, cloneable across threads.
///
/// Cancellation is one-way and sticky: once cancelled, a token stays
/// cancelled for every clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Every holder of a clone observes the cancellation
    /// on its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// The token newly constructed networks on this thread adopt.
    static AMBIENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs `token` as the current thread's ambient cancellation token and
/// returns a guard; every [`crate::Network`] constructed on this thread
/// while the guard lives adopts the token. Dropping the guard restores
/// whatever token (or none) was ambient before — installations nest.
#[must_use]
pub fn install_ambient(token: CancelToken) -> AmbientCancelGuard {
    let previous = AMBIENT.with(|slot| slot.borrow_mut().replace(token));
    AmbientCancelGuard { previous }
}

/// The current thread's ambient token, if one is installed.
#[must_use]
pub fn ambient() -> Option<CancelToken> {
    AMBIENT.with(|slot| slot.borrow().clone())
}

/// Restores the previously ambient token on drop. Returned by
/// [`install_ambient`].
#[derive(Debug)]
pub struct AmbientCancelGuard {
    previous: Option<CancelToken>,
}

impl Drop for AmbientCancelGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        AMBIENT.with(|slot| *slot.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn ambient_installation_nests_and_restores() {
        assert!(ambient().is_none());
        let outer = CancelToken::new();
        let guard = install_ambient(outer.clone());
        assert!(ambient().is_some());
        {
            let inner = CancelToken::new();
            inner.cancel();
            let nested = install_ambient(inner);
            assert!(ambient().expect("nested token installed").is_cancelled());
            drop(nested);
        }
        assert!(
            !ambient().expect("outer token restored").is_cancelled(),
            "dropping the nested guard restores the outer token"
        );
        drop(guard);
        assert!(ambient().is_none());
    }
}
