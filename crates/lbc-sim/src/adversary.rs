//! The adversary interface controlling faulty nodes.

use std::fmt::Debug;

use lbc_model::Round;

use crate::protocol::{Inbox, NodeContext, Outgoing};

/// A Byzantine adversary controlling the faulty nodes of an execution.
///
/// Every round, for every faulty node, the simulator first runs the node's
/// ordinary protocol instance (so the adversary can see what an honest node
/// *would* have sent) and then lets the adversary replace those transmissions
/// with anything it likes via [`Adversary::intercept`].
///
/// The adversary does **not** get to violate the communication model: the
/// network decides who physically receives each transmission. In particular,
/// under local broadcast a unicast produced by the adversary is still
/// overheard by every neighbor of the faulty node, so equivocation attempts
/// are (faithfully to the model) impossible for non-equivocating nodes.
pub trait Adversary<M> {
    /// Replaces the outgoing transmissions of the faulty node `ctx.id` for
    /// this round. `honest_outgoing` is what the node's protocol instance
    /// produced; `inbox` is what the node received this round (empty for the
    /// start-of-execution call, where `round` is `None`).
    fn intercept(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Option<Round>,
        honest_outgoing: Vec<Outgoing<M>>,
        inbox: Inbox<'_, M>,
    ) -> Vec<Outgoing<M>>;
}

/// The trivial adversary: faulty nodes follow the protocol unchanged.
///
/// Useful as a baseline ("fail-free execution") and for tests that only
/// exercise the fault-free path.
#[derive(Debug, Clone, Copy, Default)]
pub struct HonestAdversary;

impl<M> Adversary<M> for HonestAdversary {
    fn intercept(
        &mut self,
        _ctx: &NodeContext<'_>,
        _round: Option<Round>,
        honest_outgoing: Vec<Outgoing<M>>,
        _inbox: Inbox<'_, M>,
    ) -> Vec<Outgoing<M>> {
        honest_outgoing
    }
}

/// Convenience constructor for [`HonestAdversary`], handy at call sites that
/// need a `&mut` adversary expression inline.
#[must_use]
pub fn honest_adversary() -> HonestAdversary {
    HonestAdversary
}

impl<M, F> Adversary<M> for F
where
    F: FnMut(&NodeContext<'_>, Option<Round>, Vec<Outgoing<M>>, Inbox<'_, M>) -> Vec<Outgoing<M>>,
    M: Debug,
{
    fn intercept(
        &mut self,
        ctx: &NodeContext<'_>,
        round: Option<Round>,
        honest_outgoing: Vec<Outgoing<M>>,
        inbox: Inbox<'_, M>,
    ) -> Vec<Outgoing<M>> {
        self(ctx, round, honest_outgoing, inbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbc_graph::generators;
    use lbc_model::{NodeId, Value};

    #[test]
    fn honest_adversary_passes_messages_through() {
        let graph = generators::cycle(3);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let observer = lbc_telemetry::ObserverHandle::disabled();
        let ctx = NodeContext {
            id: NodeId::new(0),
            graph: &graph,
            f: 1,
            regime: &lbc_model::Regime::Synchronous,
            step: None,
            arena: &arena,
            ledger: &ledger,
            observer: &observer,
        };
        let mut adv = HonestAdversary;
        let out = vec![Outgoing::Broadcast(Value::One)];
        let result = adv.intercept(&ctx, None, out.clone(), Inbox::direct(&[]));
        assert_eq!(result, out);
    }

    #[test]
    fn closures_are_adversaries() {
        let graph = generators::cycle(3);
        let arena = lbc_model::SharedPathArena::new();
        let ledger = lbc_model::SharedFloodLedger::new();
        let observer = lbc_telemetry::ObserverHandle::disabled();
        let ctx = NodeContext {
            id: NodeId::new(1),
            graph: &graph,
            f: 1,
            regime: &lbc_model::Regime::Synchronous,
            step: None,
            arena: &arena,
            ledger: &ledger,
            observer: &observer,
        };
        // Drop everything the faulty node would have sent.
        let mut silent = |_ctx: &NodeContext<'_>,
                          _round: Option<Round>,
                          _honest: Vec<Outgoing<Value>>,
                          _inbox: Inbox<'_, Value>| Vec::new();
        let result = silent.intercept(
            &ctx,
            None,
            vec![Outgoing::Broadcast(Value::One)],
            Inbox::direct(&[]),
        );
        assert!(result.is_empty());
    }
}
