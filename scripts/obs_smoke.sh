#!/usr/bin/env bash
# Observability smoke: gates the telemetry/tracing surface.
#
#   1. Opt-in        — a plain campaign run carries no "telemetry" key and
#                      no wall-clock field in the report JSON; `--telemetry`
#                      adds the section plus a per-cell metrics CSV.
#   2. Determinism   — the telemetry-bearing report is byte-identical at 1
#                      and 4 workers (the embedded section is event-derived;
#                      wall clock lives only in the CSV/summary), and two
#                      traces of the same cell render identically.
#   3. Explainability — `lbc trace` on a violating gst_boundary cell names
#                      the injected attack (strategy, gst, hold-set), the
#                      GST burst step, a tamper provenance chain, and the
#                      first divergent decision; the same works against the
#                      search's minimized counterexample fragments.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_OBS_OUT:-target/lbc-obs-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w4"

cargo build --release --bin lbc

SPEC=examples/campaigns/gst_boundary.json

# Opt-in: the plain report has no telemetry section and no timing field.
./target/release/lbc campaign "$SPEC" --workers 4 --out "$OUT/w1" --quiet
python3 - "$OUT/w1/gst_boundary.report.json" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
assert '"telemetry"' not in text, "plain run must not embed telemetry"
assert '"wall' not in text, "canonical report must stay timing-free"
json.loads(text)
EOF
test ! -e "$OUT/w1/gst_boundary.telemetry.csv"
PLAIN="$OUT/w1/gst_boundary.report.json"
mv "$PLAIN" "$OUT/plain.report.json"

# --telemetry: section + CSV appear, and the report (telemetry section
# included) keeps worker-count byte-identity.
./target/release/lbc campaign "$SPEC" --telemetry --workers 1 --out "$OUT/w1" --quiet
./target/release/lbc campaign "$SPEC" --telemetry --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/gst_boundary.report.json" "$OUT/w4/gst_boundary.report.json"
test -s "$OUT/w1/gst_boundary.telemetry.csv"

python3 - "$OUT/w1/gst_boundary.report.json" "$OUT/plain.report.json" \
          "$OUT/w1/gst_boundary.telemetry.csv" <<'EOF'
import json, sys

observed = json.load(open(sys.argv[1]))
plain = json.load(open(sys.argv[2]))

telemetry = observed.pop("telemetry")
assert observed == plain, "telemetry must be purely additive to the report"
assert '"wall' not in json.dumps(telemetry), "telemetry JSON must be timing-free"
aggregate = telemetry["aggregate"]
for metric in ("transmissions", "deliveries", "tampered", "burst_deliveries",
               "decisions", "channels_opened"):
    assert aggregate["counters"].get(metric, 0) > 0, f"aggregate missing {metric}"
assert len(telemetry["cells"]) == len(plain["records"])

header, *rows = open(sys.argv[3]).read().splitlines()
assert header.startswith("index,transmissions,")
assert header.endswith(",wall_micros")
assert len(rows) == len(plain["records"])
print(f"telemetry OK: {len(rows)} cells, "
      f"{aggregate['counters']['transmissions']} transmissions, "
      f"{aggregate['counters']['tampered']} tampered, "
      f"{aggregate['counters']['burst_deliveries']} burst deliveries")
EOF

# Explainability: trace the first violating cell and assert the post-mortem
# names the injected attack end to end.
CELL=$(python3 - "$OUT/w1/gst_boundary.report.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for record in report["records"]:
    if not record["correct"] and record["regime"].startswith("psync-"):
        print(record["index"])
        break
else:
    raise AssertionError("gst_boundary produced no partial-sync violation")
EOF
)

./target/release/lbc trace "$SPEC" --cell "$CELL" > "$OUT/trace.txt"
./target/release/lbc trace "$SPEC" --cell "$CELL" > "$OUT/trace2.txt"
cmp "$OUT/trace.txt" "$OUT/trace2.txt"

grep -q "VIOLATION" "$OUT/trace.txt"
grep -q "injected attack: strategy=sleeper-tamper" "$OUT/trace.txt"
grep -Eq "schedule attack: gst=12 hold-set=\[v[0-9]+" "$OUT/trace.txt"
grep -Eq "GST burst: step s12 released [0-9]+ held deliveries" "$OUT/trace.txt"
grep -q "tampered in flight:" "$OUT/trace.txt"
grep -q "first divergent value:" "$OUT/trace.txt"
grep -Eq "decision: v[0-9]+ -> [01] at s[0-9]+ on evidence" "$OUT/trace.txt"

# The timeline view carries the per-step structure and the burst release.
grep -q "^step 12$" "$OUT/trace.txt"
grep -Eq "^  burst s12 released=[0-9]+" "$OUT/trace.txt"

# Trace also replays search counterexample fragments (the emitted
# counterexamples file is itself a campaign spec). Pick the minimized
# partial-sync fragment so the post-mortem shows the timing attack.
./target/release/lbc search "$SPEC" --require-violation --workers 4 \
  --out "$OUT" --quiet
CX="$OUT/gst_boundary.counterexamples.json"
./target/release/lbc campaign "$CX" --out "$OUT" --quiet
CX_CELL=$(python3 - "$OUT/gst_boundary_counterexamples.report.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for record in report["records"]:
    if record["regime"].startswith("psync-"):
        assert not record["correct"], "minimized GST fragment no longer violates"
        print(record["index"])
        break
else:
    raise AssertionError("counterexamples carry no partial-sync fragment")
EOF
)
./target/release/lbc trace "$CX" --cell "$CX_CELL" --no-timeline > "$OUT/cx-trace.txt"
grep -q "VIOLATION" "$OUT/cx-trace.txt"
grep -Eq "schedule attack: gst=[0-9]+" "$OUT/cx-trace.txt"

echo "obs smoke OK: opt-in telemetry + deterministic section/trace + post-mortem names the GST attack (cell $CELL)"
