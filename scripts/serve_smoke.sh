#!/usr/bin/env bash
# Serve smoke: runs the committed 200-instance repeated-consensus spec
# (C9(1,2) under sync and async-fifo, plus an Algorithm 1 lane on C5) in
# --strict mode at 1, 2 and 8 workers, byte-compares the canonical JSON
# reports across worker counts, and asserts the report's own verdicts:
# every instance correct and the per-tag ledger-channel occupancy bounded
# (<= 2 live / <= 3 allocated — the chained driver must retire instance
# k-2's session as instance k starts, not accumulate channels).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_SERVE_OUT:-target/lbc-serve-smoke}"
SPEC="examples/campaigns/serve_smoke.json"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w2" "$OUT/w8"

cargo build --release --bin lbc

./target/release/lbc serve "$SPEC" --strict --workers 1 --out "$OUT/w1"
./target/release/lbc serve "$SPEC" --strict --workers 2 --out "$OUT/w2" --quiet
./target/release/lbc serve "$SPEC" --strict --workers 8 --out "$OUT/w8" --quiet
cmp "$OUT/w1/serve-smoke.serve.report.json" "$OUT/w2/serve-smoke.serve.report.json"
cmp "$OUT/w1/serve-smoke.serve.report.json" "$OUT/w8/serve-smoke.serve.report.json"

# Re-assert the verdicts from the report itself, independent of the CLI's
# exit-code paths: all instances correct, channel occupancy bounded.
python3 - "$OUT/w1/serve-smoke.serve.report.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
assert report["all_correct"] is True, "report not all-correct"
assert report["channels_bounded"] is True, "report channel occupancy unbounded"
instances = 0
for lane in report["lanes"]:
    chain = lane["chain"]
    assert chain["max_live_per_tag"] <= 2, f"lane {lane['index']}: {chain['max_live_per_tag']} live sessions per tag"
    assert chain["max_allocated_channels"] <= 3 * max(chain["live_tags"], 1), \
        f"lane {lane['index']}: {chain['max_allocated_channels']} allocated channels"
    for record in lane["instances"]:
        assert record["correct"] is True, f"lane {lane['index']}: incorrect instance"
        instances += 1
expected = report["instances"] * len(report["lanes"])
assert instances == expected, f"{instances} instance records, expected {expected}"
print(f"report verdicts ok: {instances} instances, channels bounded in every lane")
EOF

echo "serve smoke OK: strict verdicts + byte-identical reports at 1/2/8 workers + bounded channels"
