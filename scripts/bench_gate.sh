#!/usr/bin/env bash
# Bench-regression gate: re-measures the flood-engine baseline on this
# machine and compares the naive / per-node / ledger speedup triples against
# the committed baseline with a ±25% tolerance. Absolute nanosecond medians
# differ across hardware; the engine *ratios* are far more stable — a drop
# past the tolerance is an engine regression and fails the job.
#
# The default baseline is BENCH_pr4.json (the PR-4 snapshot; ratios drift
# across hardware generations, so the committed baseline should be
# refreshed via scripts/bench_baseline.sh whenever the reference machine
# changes — BENCH_pr3.json's 12x wheel13 ratio, for example, measures ~7x
# on the PR-4 machine).
#
#   scripts/bench_gate.sh                       # gate against BENCH_pr4.json
#   scripts/bench_gate.sh BENCH_other.json      # gate against another baseline
#   BENCH_GATE_TOLERANCE=40 scripts/bench_gate.sh   # widen the tolerance
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_pr4.json}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-25}"
FRESH_DIR="target/lbc-bench-gate"
FRESH="$FRESH_DIR/fresh_baseline.json"

mkdir -p "$FRESH_DIR"
scripts/bench_baseline.sh "$FRESH"
cargo run --release -p lbc-bench --bin bench_gate -- "$BASELINE" "$FRESH" "$TOLERANCE"

# Disabled-observer overhead wall: the hot path now threads an
# ObserverHandle everywhere, so the fresh medians *are* the
# disabled-observer measurement. They must stay within tolerance of the
# pre-telemetry snapshot (BENCH_pr6.json) — ~2% on the baseline machine;
# the default tolerance matches the ratio gate's to absorb hardware drift.
OBS_BASELINE="${LBC_OBS_BASELINE:-BENCH_pr6.json}"
OBS_TOLERANCE="${LBC_OBS_TOLERANCE:-$TOLERANCE}"
python3 - "$OBS_BASELINE" "$FRESH" "$OBS_TOLERANCE" <<'EOF'
import json, sys

base_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
HOT = [
    ("fig1a_cycle", "flood_c13_ledger"),
    ("fig1a_cycle", "algorithm1_c13_f1_tamper"),
    ("reliable_receive", "flood_wheel13_ledger"),
    ("reliable_receive", "algorithm2_k5_f2_identification"),
    ("async_regime", "asyncflood_circ9_f1_fifo_d3"),
    ("async_regime", "asyncflood_circ9_f1_psync_g12_h2_fifo_d3"),
]

def medians(path):
    doc = json.load(open(path))
    return {(b["group"], b["bench"]): b["median_ns"] for b in doc["benches"]}

base, fresh = medians(base_path), medians(fresh_path)
ceiling = 1.0 + tolerance / 100.0
ok = True
for key in HOT:
    name = "/".join(key)
    if key not in base:
        print(f"obs gate note: {name} absent from {base_path}")
        continue
    if key not in fresh:
        print(f"OBS GATE FAIL: {name} missing from fresh measurement", file=sys.stderr)
        ok = False
        continue
    ratio = fresh[key] / base[key]
    line = (f"{name}: {fresh[key]:.0f}ns vs committed {base[key]:.0f}ns "
            f"({(ratio - 1) * 100:+.1f}%, ceiling +{tolerance:.0f}%)")
    if ratio > ceiling:
        print(f"OBS GATE FAIL: {line}", file=sys.stderr)
        ok = False
    else:
        print(f"obs gate ok: {line}")
if not ok:
    sys.exit(1)
print("disabled-observer overhead gate passed")
EOF

# Repeated-consensus service wall: the chained driver behind `lbc serve`
# must (a) keep beating the same workload replayed as one-shot runs — the
# amortization that justifies the long-lived Network — and (b) hold its
# committed decisions/sec and p99 instance-latency medians (BENCH_pr8.json)
# within the shared tolerance. With the shim's 10-sample groups the
# nearest-rank p99 is the max sample, so the tail wall reads max_ns.
SERVE_BASELINE="${LBC_SERVE_BASELINE:-BENCH_pr8.json}"
SERVE_TOLERANCE="${LBC_SERVE_TOLERANCE:-$TOLERANCE}"
python3 - "$SERVE_BASELINE" "$FRESH" "$SERVE_TOLERANCE" <<'EOF'
import json, sys

base_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
GROUP = "serve_throughput"
PAIRS = [  # (regime label, chain bench, oneshot bench, instances per iteration)
    ("sync", "chain100_circ9_f1_sync", "oneshot100_circ9_f1_sync", 100),
    ("fifo_d2", "chain100_circ9_f1_fifo_d2", "oneshot100_circ9_f1_fifo_d2", 100),
]

def records(path):
    doc = json.load(open(path))
    return {(b["group"], b["bench"]): b for b in doc["benches"]}

base, fresh = records(base_path), records(fresh_path)
ceiling = 1.0 + tolerance / 100.0
ok = True
for label, chain, oneshot, instances in PAIRS:
    ck, ok_key = (GROUP, chain), (GROUP, oneshot)
    missing = [k for k in (ck, ok_key) if k not in fresh]
    if missing:
        for k in missing:
            print(f"SERVE GATE FAIL: {'/'.join(k)} missing from fresh measurement",
                  file=sys.stderr)
        ok = False
        continue
    c, o = fresh[ck], fresh[ok_key]

    # Amortization: chain median must stay below the one-shot median. The
    # ratio is fresh-vs-fresh on one machine, so it gets the committed
    # ratio widened by the tolerance as its ceiling, capped at parity.
    ratio = c["median_ns"] / o["median_ns"]
    cap = 1.0
    if ck in base and ok_key in base:
        cap = min(1.0, (base[ck]["median_ns"] / base[ok_key]["median_ns"]) * ceiling)
    line = f"serve {label}: chain/oneshot {ratio:.3f} (ceiling {cap:.3f})"
    if ratio > cap:
        print(f"SERVE GATE FAIL: {line}", file=sys.stderr)
        ok = False
    else:
        print(f"serve gate ok: {line}")

    if ck not in base:
        print(f"serve gate note: {'/'.join(ck)} absent from {base_path}")
        continue
    b = base[ck]

    # Throughput: committed decisions/sec within tolerance.
    rate = instances * 1e9 / c["median_ns"]
    floor = instances * 1e9 / b["median_ns"] / ceiling
    line = f"serve {label}: {rate:.0f} decisions/s (floor {floor:.0f})"
    if rate < floor:
        print(f"SERVE GATE FAIL: {line}", file=sys.stderr)
        ok = False
    else:
        print(f"serve gate ok: {line}")

    # Tail: p99 instance latency (max of the 10-sample group / instances).
    p99 = c["max_ns"] / instances
    wall = b["max_ns"] / instances * ceiling
    line = f"serve {label}: p99 {p99 / 1000:.0f}us/instance (wall {wall / 1000:.0f}us)"
    if p99 > wall:
        print(f"SERVE GATE FAIL: {line}", file=sys.stderr)
        ok = False
    else:
        print(f"serve gate ok: {line}")
if not ok:
    sys.exit(1)
print("repeated-consensus service gate passed")
EOF
