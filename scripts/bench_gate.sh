#!/usr/bin/env bash
# Bench-regression gate: re-measures the flood-engine baseline on this
# machine and compares the naive / per-node / ledger speedup triples against
# the committed baseline with a ±25% tolerance. Absolute nanosecond medians
# differ across hardware; the engine *ratios* are far more stable — a drop
# past the tolerance is an engine regression and fails the job.
#
# The default baseline is BENCH_pr4.json (the PR-4 snapshot; ratios drift
# across hardware generations, so the committed baseline should be
# refreshed via scripts/bench_baseline.sh whenever the reference machine
# changes — BENCH_pr3.json's 12x wheel13 ratio, for example, measures ~7x
# on the PR-4 machine).
#
#   scripts/bench_gate.sh                       # gate against BENCH_pr4.json
#   scripts/bench_gate.sh BENCH_other.json      # gate against another baseline
#   BENCH_GATE_TOLERANCE=40 scripts/bench_gate.sh   # widen the tolerance
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_pr4.json}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-25}"
FRESH_DIR="target/lbc-bench-gate"
FRESH="$FRESH_DIR/fresh_baseline.json"

mkdir -p "$FRESH_DIR"
scripts/bench_baseline.sh "$FRESH"
cargo run --release -p lbc-bench --bin bench_gate -- "$BASELINE" "$FRESH" "$TOLERANCE"

# Disabled-observer overhead wall: the hot path now threads an
# ObserverHandle everywhere, so the fresh medians *are* the
# disabled-observer measurement. They must stay within tolerance of the
# pre-telemetry snapshot (BENCH_pr6.json) — ~2% on the baseline machine;
# the default tolerance matches the ratio gate's to absorb hardware drift.
OBS_BASELINE="${LBC_OBS_BASELINE:-BENCH_pr6.json}"
OBS_TOLERANCE="${LBC_OBS_TOLERANCE:-$TOLERANCE}"
python3 - "$OBS_BASELINE" "$FRESH" "$OBS_TOLERANCE" <<'EOF'
import json, sys

base_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
HOT = [
    ("fig1a_cycle", "flood_c13_ledger"),
    ("fig1a_cycle", "algorithm1_c13_f1_tamper"),
    ("reliable_receive", "flood_wheel13_ledger"),
    ("reliable_receive", "algorithm2_k5_f2_identification"),
    ("async_regime", "asyncflood_circ9_f1_fifo_d3"),
    ("async_regime", "asyncflood_circ9_f1_psync_g12_h2_fifo_d3"),
]

def medians(path):
    doc = json.load(open(path))
    return {(b["group"], b["bench"]): b["median_ns"] for b in doc["benches"]}

base, fresh = medians(base_path), medians(fresh_path)
ceiling = 1.0 + tolerance / 100.0
ok = True
for key in HOT:
    name = "/".join(key)
    if key not in base:
        print(f"obs gate note: {name} absent from {base_path}")
        continue
    if key not in fresh:
        print(f"OBS GATE FAIL: {name} missing from fresh measurement", file=sys.stderr)
        ok = False
        continue
    ratio = fresh[key] / base[key]
    line = (f"{name}: {fresh[key]:.0f}ns vs committed {base[key]:.0f}ns "
            f"({(ratio - 1) * 100:+.1f}%, ceiling +{tolerance:.0f}%)")
    if ratio > ceiling:
        print(f"OBS GATE FAIL: {line}", file=sys.stderr)
        ok = False
    else:
        print(f"obs gate ok: {line}")
if not ok:
    sys.exit(1)
print("disabled-observer overhead gate passed")
EOF
