#!/usr/bin/env bash
# Bench-regression gate: re-measures the flood-engine baseline on this
# machine and compares the naive / per-node / ledger speedup triples against
# the committed baseline with a ±25% tolerance. Absolute nanosecond medians
# differ across hardware; the engine *ratios* are far more stable — a drop
# past the tolerance is an engine regression and fails the job.
#
# The default baseline is BENCH_pr4.json (the PR-4 snapshot; ratios drift
# across hardware generations, so the committed baseline should be
# refreshed via scripts/bench_baseline.sh whenever the reference machine
# changes — BENCH_pr3.json's 12x wheel13 ratio, for example, measures ~7x
# on the PR-4 machine).
#
#   scripts/bench_gate.sh                       # gate against BENCH_pr4.json
#   scripts/bench_gate.sh BENCH_other.json      # gate against another baseline
#   BENCH_GATE_TOLERANCE=40 scripts/bench_gate.sh   # widen the tolerance
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_pr4.json}"
TOLERANCE="${BENCH_GATE_TOLERANCE:-25}"
FRESH_DIR="target/lbc-bench-gate"
FRESH="$FRESH_DIR/fresh_baseline.json"

mkdir -p "$FRESH_DIR"
scripts/bench_baseline.sh "$FRESH"
cargo run --release -p lbc-bench --bin bench_gate -- "$BASELINE" "$FRESH" "$TOLERANCE"
