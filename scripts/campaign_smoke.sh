#!/usr/bin/env bash
# Campaign smoke: runs the committed multi-family smoke campaign and the
# E1-as-campaign spec in --strict mode (any incorrect consensus verdict
# fails the script), and proves worker-count determinism end to end by
# byte-comparing the canonical JSON reports produced at 1 and 4 workers.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_CAMPAIGN_OUT:-target/lbc-campaign-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w4"

cargo build --release --bin lbc

./target/release/lbc campaign examples/campaigns/smoke.json --strict --workers 1 --out "$OUT/w1"
./target/release/lbc campaign examples/campaigns/smoke.json --strict --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/smoke.report.json" "$OUT/w4/smoke.report.json"

# Self-diff smoke: the cell-by-cell comparator must call byte-identical
# reports clean, and must exit non-zero on a fabricated verdict regression.
./target/release/lbc campaign diff "$OUT/w1/smoke.report.json" "$OUT/w4/smoke.report.json"
sed 's/"correct": true/"correct": false/' "$OUT/w1/smoke.report.json" > "$OUT/regressed.json"
if ./target/release/lbc campaign diff "$OUT/w1/smoke.report.json" "$OUT/regressed.json" > /dev/null 2>&1; then
  echo "campaign diff failed to flag a verdict regression" >&2
  exit 1
fi

./target/release/lbc campaign examples/campaigns/e1_fig1a.json --strict --out "$OUT" --quiet

echo "campaign smoke OK: strict verdicts + byte-identical reports + self-diff across worker counts"
