#!/usr/bin/env bash
# Runs every smoke gate in sequence — the seven CI walls — printing a
# per-gate wall time and keeping going past failures so one broken gate
# does not hide the state of the rest. Exits non-zero if any gate failed.
#
#   scripts/smoke_all.sh              # run all seven gates
#   scripts/smoke_all.sh serve gst    # run a subset by name
set -uo pipefail
cd "$(dirname "$0")/.."

ALL_GATES=(campaign search async gst obs chaos serve)
if [[ $# -gt 0 ]]; then
  GATES=("$@")
else
  GATES=("${ALL_GATES[@]}")
fi

# One shared release build up front so the first gate's wall time is the
# gate, not the compile.
cargo build --release --bin lbc || exit 1

declare -a RESULTS=()
failed=0
for gate in "${GATES[@]}"; do
  script="scripts/${gate}_smoke.sh"
  if [[ ! -x "$script" ]]; then
    echo "smoke_all: unknown gate '$gate' (no $script)" >&2
    failed=1
    RESULTS+=("MISSING ${gate}")
    continue
  fi
  echo "=== ${gate} smoke ==="
  start=$SECONDS
  if "$script"; then
    RESULTS+=("ok      ${gate}  $((SECONDS - start))s")
  else
    failed=1
    RESULTS+=("FAILED  ${gate}  $((SECONDS - start))s")
  fi
done

echo
echo "=== smoke gates ==="
for line in "${RESULTS[@]}"; do
  echo "  $line"
done
if [[ "$failed" -ne 0 ]]; then
  echo "smoke_all: at least one gate failed" >&2
  exit 1
fi
echo "smoke_all: all ${#GATES[@]} gates passed"
