#!/usr/bin/env bash
# Async-regime smoke: gates the execution-regime boundary campaign.
#
# 1. `lbc campaign --list` expands the committed async_boundary spec without
#    executing anything (the spec-debugging view must cover every regime).
# 2. The sweep runs at 1 and 4 workers and the canonical reports must be
#    byte-identical — the regime axis (derived schedule seeds included) is
#    part of the determinism contract.
# 3. The boundary result itself is asserted: every conforming cell
#    (C9(1,2), connectivity 4 ≥ 2f+1) is correct under every scheduler, the
#    synchronous Algorithm 1 control on the 5-cycle is correct, and the
#    *same* 5-cycle under the asynchronous algorithm reproduces agreement
#    violations — the regime separation, deterministically.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_ASYNC_OUT:-target/lbc-async-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w4"

cargo build --release --bin lbc

# Spec debugging: the expanded table must list the async regimes.
./target/release/lbc campaign examples/campaigns/async_boundary.json --list > "$OUT/list.txt"
grep -q "async-edge-lag-d3" "$OUT/list.txt"
grep -q "async-delay-max-d3" "$OUT/list.txt"
./target/release/lbc search examples/campaigns/search_boundary.json --list > /dev/null

./target/release/lbc campaign examples/campaigns/async_boundary.json --workers 1 --out "$OUT/w1" --quiet
./target/release/lbc campaign examples/campaigns/async_boundary.json --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/async_boundary.report.json" "$OUT/w4/async_boundary.report.json"
./target/release/lbc campaign diff "$OUT/w1/async_boundary.report.json" "$OUT/w4/async_boundary.report.json" > /dev/null

python3 - "$OUT/w1/async_boundary.report.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
conforming = sync_control = violations = sub_threshold = 0
for record in report["records"]:
    family, algorithm = record["family"], record["algorithm"]
    if family == "circulant" and algorithm == "async":
        conforming += 1
        assert record["feasible"], "C9(1,2) is above the async threshold"
        assert record["correct"], f"conforming cell violated: {record}"
    elif family == "cycle" and algorithm == "alg1":
        sync_control += 1
        assert record["correct"], f"sync control violated: {record}"
    elif family == "cycle" and algorithm == "async":
        sub_threshold += 1
        assert not record["feasible"], "the cycle is below the async threshold"
        violations += 0 if record["correct"] else 1
    else:
        raise AssertionError(f"unexpected cell: {record}")

assert conforming > 0 and sync_control > 0 and sub_threshold > 0
assert violations > 0, "the sub-threshold cycle must exhibit async violations"
print(
    f"async boundary OK: {conforming} conforming correct, "
    f"{sync_control} sync-control correct, "
    f"{violations}/{sub_threshold} sub-threshold violations reproduced"
)
EOF

echo "async smoke OK: regime axis deterministic across workers + boundary separation reproduced"
