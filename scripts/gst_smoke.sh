#!/usr/bin/env bash
# Partial-synchrony (GST) smoke: gates the timing-attack fault dimension.
#
#   1. Spec surface   — `--list` expands the committed gst_boundary spec and
#                       shows the partial-sync regimes; zero-valued knobs
#                       (`gst: 0`, `delay: 0`) are *rejected* at parse time,
#                       not clamped.
#   2. Determinism    — campaign AND search reports are byte-identical at 1
#                       and 4 workers (the hold-until-GST burst and the
#                       timing-mutation schedule are part of the contract).
#   3. Boundary       — the sleeper(12) cycle cell is correct under sync and
#                       under plain fifo-2 async, and violated only under the
#                       hold-until-GST schedule; the above-threshold
#                       circulant control absorbs every GST attack.
#   4. Timing attack  — `lbc search` discovers a violating GST-straddling
#                       candidate on the partial-sync cycle cell (its best
#                       schedule is a partial-sync attack with gst >= 1),
#                       minimizes it toward earliest-GST/smallest-hold, and
#                       the emitted counterexamples re-violate when replayed.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_GST_OUT:-target/lbc-gst-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w4"

cargo build --release --bin lbc

# Spec debugging: the expanded table must list the partial-sync regimes.
./target/release/lbc campaign examples/campaigns/gst_boundary.json --list > "$OUT/list.txt"
grep -q "psync-g12-h4-async-fifo-d2" "$OUT/list.txt"
grep -q "psync-g8-h11-async-edge-lag-d3" "$OUT/list.txt"
./target/release/lbc search examples/campaigns/gst_boundary.json --list > /dev/null

# Zero-valued timing knobs are spec errors, not silent clamps.
for bad in '{"kind": "partial-sync", "gst": 0, "hold": [2], "scheduler": "fifo", "delay": 2}' \
           '{"kind": "partial-sync", "gst": 4, "hold": [2], "scheduler": "fifo", "delay": 0}' \
           '{"kind": "async", "scheduler": "fifo", "delay": 0}'; do
  sed "s|\"sync\",|$bad,|" examples/campaigns/gst_boundary.json > "$OUT/bad.json"
  if ./target/release/lbc campaign "$OUT/bad.json" --list > /dev/null 2> "$OUT/bad.err"; then
    echo "zero-valued timing knob was accepted: $bad" >&2
    exit 1
  fi
  grep -Eq "out of range|asynchronous regime" "$OUT/bad.err"
done

./target/release/lbc campaign examples/campaigns/gst_boundary.json --workers 1 --out "$OUT/w1" --quiet
./target/release/lbc campaign examples/campaigns/gst_boundary.json --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/gst_boundary.report.json" "$OUT/w4/gst_boundary.report.json"
./target/release/lbc campaign diff "$OUT/w1/gst_boundary.report.json" "$OUT/w4/gst_boundary.report.json" > /dev/null

python3 - "$OUT/w1/gst_boundary.report.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
cycle = {}
control = 0
for record in report["records"]:
    if record["family"] == "cycle":
        assert not record["feasible"], "the cycle is below the async threshold"
        total, violations = cycle.get(record["regime"], (0, 0))
        cycle[record["regime"]] = (total + 1, violations + (0 if record["correct"] else 1))
    elif record["family"] == "circulant":
        control += 1
        assert record["feasible"], "C9(1,2) is above the async threshold"
        assert record["correct"], f"above-threshold cell violated: {record}"
    else:
        raise AssertionError(f"unexpected cell: {record}")

assert control > 0
assert set(cycle) == {"sync", "async-fifo-d2", "psync-g12-h4-async-fifo-d2"}
for regime, (total, violations) in cycle.items():
    assert total == 160, f"[{regime}] expected 5 placements x 32 inputs, got {total}"
    if regime.startswith("psync-"):
        assert violations > 0, "the hold-until-GST schedule must break the sleeper"
    else:
        assert violations == 0, f"sleeper(12) violated under [{regime}]"

psync_violations = cycle["psync-g12-h4-async-fifo-d2"][1]
print(
    f"gst boundary OK: {control} above-threshold GST-attack cells correct, "
    f"sleeper(12) 0 violations under sync/async, "
    f"{psync_violations}/160 under hold-until-GST"
)
EOF

# The search must discover the timing attack and keep worker-count
# byte-identity on the search report too.
./target/release/lbc search examples/campaigns/gst_boundary.json \
  --require-violation --workers 1 --out "$OUT/w1" --quiet
./target/release/lbc search examples/campaigns/gst_boundary.json \
  --require-violation --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/gst_boundary.search.json" "$OUT/w4/gst_boundary.search.json"

python3 - "$OUT/w1/gst_boundary.search.json" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
cells = {(c["graph"], c["regime"]): c for c in report["cells"]}
psync = cells[("C5", "psync-g12-h4-async-fifo-d2")]
assert psync["violation"], "search failed to violate the partial-sync cycle cell"

best = psync["best"]["schedule"]
assert best["kind"] == "partial-sync", f"best attack is not a timing attack: {best}"
assert best["gst"] >= 1, f"best attack does not straddle GST: {best}"

shrunk = psync["counterexample"]["candidate"]["schedule"]
assert shrunk["kind"] == "partial-sync", f"minimized fragment lost the regime: {shrunk}"
assert shrunk["gst"] <= best["gst"], "minimization must shrink toward the earliest GST"
assert len(shrunk["hold"]) <= len(best["hold"]), "minimization must shrink the hold-set"

for graph, regime in cells:
    if graph.startswith("C9"):
        assert not cells[(graph, regime)]["violation"], \
            f"above-threshold cell violated under search pressure: {graph} [{regime}]"

print(
    f"gst search OK: best GST-straddling attack gst={best['gst']} hold={best['hold']}, "
    f"minimized to gst={shrunk['gst']} hold={shrunk['hold']}"
)
EOF

# Replaying the minimized counterexamples must re-exhibit every violation
# (clean run first, so a broken writer cannot fake the strict failure).
./target/release/lbc campaign "$OUT/w1/gst_boundary.counterexamples.json" \
  --out "$OUT" --quiet
if ./target/release/lbc campaign "$OUT/w1/gst_boundary.counterexamples.json" \
     --strict --out "$OUT" --quiet; then
  echo "minimized timing counterexamples no longer violate when replayed" >&2
  exit 1
fi

echo "gst smoke OK: zero-knob rejection + deterministic reports + GST boundary + discovered timing attack"
