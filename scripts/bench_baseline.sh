#!/usr/bin/env bash
# Regenerates BENCH_baseline.json: runs the baseline bench targets (the two
# flood-engine benches plus the feasibility sweep) and aggregates the
# criterion-shim JSON records into one file at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, so a relative path would scatter the records.
export LBC_BENCH_OUT="${LBC_BENCH_OUT:-$(pwd)/target/lbc-bench}"
rm -rf "$LBC_BENCH_OUT"

cargo bench -p lbc-bench --bench fig1a_cycle --bench reliable_receive --bench threshold_sweep
cargo run --release -p lbc-bench --bin bench_baseline
