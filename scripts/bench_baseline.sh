#!/usr/bin/env bash
# Regenerates a bench baseline file: runs the baseline bench targets (the
# flood-engine benches, the feasibility sweep, and the execution-regime
# workloads — the async algorithm across the scheduler grid) and aggregates
# the criterion-shim JSON records — including naive/per-node/ledger speedup
# triples — into one file at the workspace root.
#
#   scripts/bench_baseline.sh              # writes BENCH_baseline.json
#   scripts/bench_baseline.sh BENCH_pr5.json
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_FILE="${1:-BENCH_baseline.json}"

# Absolute path: cargo runs bench binaries with the package directory as
# their working directory, so a relative path would scatter the records.
export LBC_BENCH_OUT="${LBC_BENCH_OUT:-$(pwd)/target/lbc-bench}"
rm -rf "$LBC_BENCH_OUT"

cargo bench -p lbc-bench --bench fig1a_cycle --bench reliable_receive --bench threshold_sweep --bench async_regime --bench serve_throughput
cargo run --release -p lbc-bench --bin bench_baseline -- "$OUT_FILE"
