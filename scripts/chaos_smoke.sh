#!/usr/bin/env bash
# Chaos smoke: proves the campaign executor's fault tolerance end to end.
#
#  1. Chaos-inject a panic and a watchdog timeout into the committed smoke
#     campaign (LBC_CHAOS): the run must complete anyway, exit with the
#     infrastructure code (2), and record exactly the injected quarantines
#     — byte-identically across worker counts.
#  2. Chaos-kill a mid-flight campaign after 6 journaled cells (the journal
#     flushes, then the process aborts without unwinding — what a SIGKILL
#     leaves behind), then `--resume`: the resumed canonical report must
#     byte-match the clean one-shot report, and the journal must be gone
#     once the report is written.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_CHAOS_OUT:-target/lbc-chaos-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/clean" "$OUT/chaos1" "$OUT/chaos4" "$OUT/killed"

cargo build --release --bin lbc

# Clean baseline: exit 0, no quarantines, no leftover journal.
./target/release/lbc campaign examples/campaigns/smoke.json --out "$OUT/clean" --quiet
if [ -e "$OUT/clean/smoke.checkpoint.json" ]; then
  echo "clean run left its checkpoint journal behind" >&2
  exit 1
fi

# 1. Panic + timeout injection: the run completes, exits 2, and the report
#    carries exactly the injected failures — at any worker count. The
#    budget must only ever catch the injected stall: the heaviest smoke
#    cell runs ~30 ms, so 1000 ms leaves a wide margin for loaded CI
#    runners while the 3000 ms injected delay still overshoots it.
for w in 1 4; do
  set +e
  LBC_CHAOS="panic=7;delay=21:3000" ./target/release/lbc campaign examples/campaigns/smoke.json \
    --cell-timeout 1000 --workers "$w" --out "$OUT/chaos$w" --quiet 2> "$OUT/chaos$w/stderr.log"
  code=$?
  set -e
  if [ "$code" -ne 2 ]; then
    echo "chaos campaign exited $code, want 2 (infrastructure failures)" >&2
    cat "$OUT/chaos$w/stderr.log" >&2
    exit 1
  fi
done
cmp "$OUT/chaos1/smoke.report.json" "$OUT/chaos4/smoke.report.json"

report="$OUT/chaos1/smoke.report.json"
[ "$(grep -Ec '"outcome": ?"failed"' "$report")" -eq 1 ]
[ "$(grep -Ec '"outcome": ?"timeout"' "$report")" -eq 1 ]
grep -Eq '"panic": ?"chaos: injected panic in cell 7"' "$report"
grep -q 'QUARANTINED (failed): #7' "$OUT/chaos1/stderr.log"
grep -q 'QUARANTINED (timeout): #21' "$OUT/chaos1/stderr.log"

# The diff gate must flag the newly quarantined cells as regressions.
if ./target/release/lbc campaign diff "$OUT/clean/smoke.report.json" "$report" > /dev/null 2>&1; then
  echo "campaign diff failed to flag quarantined cells as regressions" >&2
  exit 1
fi

# 2. Kill mid-flight, then resume: byte-identical to the clean one-shot.
set +e
LBC_CHAOS="kill=6" ./target/release/lbc campaign examples/campaigns/smoke.json \
  --workers 2 --out "$OUT/killed" --quiet 2> /dev/null
code=$?
set -e
if [ "$code" -eq 0 ]; then
  echo "chaos kill=6 did not kill the campaign" >&2
  exit 1
fi
if [ ! -f "$OUT/killed/smoke.checkpoint.json" ]; then
  echo "killed campaign left no checkpoint journal to resume from" >&2
  exit 1
fi
if [ -f "$OUT/killed/smoke.report.json" ]; then
  echo "killed campaign should not have written a report" >&2
  exit 1
fi
./target/release/lbc campaign examples/campaigns/smoke.json --resume --workers 4 \
  --out "$OUT/killed" --quiet
cmp "$OUT/clean/smoke.report.json" "$OUT/killed/smoke.report.json"
if [ -e "$OUT/killed/smoke.checkpoint.json" ]; then
  echo "checkpoint journal not removed after a successful resume" >&2
  exit 1
fi

echo "chaos smoke OK: quarantined panic/timeout (exit 2) + kill/resume byte-identity"
