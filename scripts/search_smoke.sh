#!/usr/bin/env bash
# Adversary-search smoke: runs the committed boundary search spec and proves
# the three properties CI gates on:
#
#   1. Rediscovery  — the search must find at least one violation
#                     (--require-violation; the C13 Appendix C omission gap
#                     is not in the spec's declared strategy grid).
#   2. Determinism  — the canonical search report is byte-identical at 1 and
#                     4 workers.
#   3. Replayability — the emitted minimized counterexamples, executed as a
#                     plain campaign in --strict mode, must re-violate
#                     (non-zero exit), and the search self-diff must be clean.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LBC_SEARCH_OUT:-target/lbc-search-smoke}"
rm -rf "$OUT"
mkdir -p "$OUT/w1" "$OUT/w4"

cargo build --release --bin lbc

./target/release/lbc search examples/campaigns/search_boundary.json \
  --require-violation --workers 1 --out "$OUT/w1"
./target/release/lbc search examples/campaigns/search_boundary.json \
  --require-violation --workers 4 --out "$OUT/w4" --quiet
cmp "$OUT/w1/search_boundary.search.json" "$OUT/w4/search_boundary.search.json"

# The search self-diff must be clean, and a fabricated lost violation must
# fail the diff (the regression wall actually walls).
./target/release/lbc campaign diff "$OUT/w1/search_boundary.search.json" "$OUT/w4/search_boundary.search.json"
sed 's/"violation": true/"violation": false/' "$OUT/w1/search_boundary.search.json" > "$OUT/lost_violation.json"
if ./target/release/lbc campaign diff "$OUT/w1/search_boundary.search.json" "$OUT/lost_violation.json" > /dev/null 2>&1; then
  echo "search diff failed to flag a lost violation" >&2
  exit 1
fi

# Replaying the minimized counterexamples must re-exhibit every violation.
# First run without --strict: the replay spec must parse, expand and execute
# cleanly (exit 0) — otherwise a broken counterexample writer would exit
# non-zero for the wrong reason and fake the violation check below.
./target/release/lbc campaign "$OUT/w1/search_boundary.counterexamples.json" \
  --out "$OUT" --quiet
if ./target/release/lbc campaign "$OUT/w1/search_boundary.counterexamples.json" \
     --strict --out "$OUT" --quiet; then
  echo "minimized counterexamples no longer violate when replayed" >&2
  exit 1
fi

echo "search smoke OK: rediscovery + byte-identical reports + replayable counterexamples"
