//! `lbc` — a small command-line front end for the local-broadcast consensus
//! library.
//!
//! ```text
//! lbc check <graph> <f> [t]        feasibility of a graph for f faults (t equivocators)
//! lbc run   <alg> <graph> <f> <faulty> <strategy>
//!                                  run a consensus algorithm and print the outcome
//! lbc impossibility <graph> <f>    run the Figure 2/3 constructions on a deficient graph
//! lbc experiments [id]             print experiment tables (all, or E1..E8)
//! lbc campaign <spec.json> [--workers N] [--out DIR] [--strict] [--list]
//!              [--cell-timeout MS] [--resume]
//!                                  expand and execute a campaign spec, writing
//!                                  <name>.report.json (canonical, deterministic)
//!                                  and <name>.report.csv (with wall times);
//!                                  --list prints the expanded scenario table
//!                                  without executing anything; panicking or
//!                                  over-budget cells are quarantined, completed
//!                                  cells are journaled so a killed run can be
//!                                  continued byte-identically with --resume.
//!                                  exit codes: 0 clean, 1 violations under
//!                                  --strict, 2 infrastructure failures
//! lbc campaign diff [--cross-spec] <old.json> <new.json>
//!                                  compare two canonical reports (campaign or
//!                                  search) cell-by-cell; exit non-zero on
//!                                  verdict regressions. --cross-spec matches
//!                                  by coordinates and tolerates added grids
//! lbc serve <spec.json> [--instances N] [--workers N] [--out DIR]
//!           [--strict] [--quiet] [--list]
//!                                  run the spec's repeated-consensus service
//!                                  lanes: N consecutive instances chained over
//!                                  one long-lived network per lane; writes
//!                                  <name>.serve.report.json (canonical,
//!                                  deterministic) and <name>.serve.report.csv
//!                                  (per-instance latencies). exit codes:
//!                                  0 clean, 1 incorrect instances under
//!                                  --strict, 2 unbounded ledger channels
//! lbc search <spec.json> [--workers N] [--out DIR] [--resume REPORT]
//!            [--require-violation] [--list]
//!                                  per-cell worst-case adversary search; writes
//!                                  <name>.search.json (canonical, resumable)
//!                                  and <name>.counterexamples.json (replayable
//!                                  minimized violations)
//! lbc trace <spec.json> --cell <id> [--no-timeline]
//!                                  replay one campaign cell with the recording
//!                                  observer and print its event timeline plus a
//!                                  violation post-mortem (works on the
//!                                  counterexample specs `lbc search` emits)
//! lbc graphs                       list the built-in graph names
//! ```
//!
//! Graph names: `c<N>` (cycle), `k<N>` (complete), `circ<N>` (circulant with
//! offsets 1,2), `q3` (hypercube), `wheel<N>`, `path<N>`, `fig1a`, `fig1b`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lbc_campaign::diff::{diff_report_texts_with, DiffOptions};
use lbc_campaign::{
    render_search_plan, replay_scenario, run_scenarios_resumable, run_search_resumed,
    run_serve_opts, CampaignSpec, ChaosPolicy, CheckpointConfig, ExecOptions,
};
use lbc_model::json::{Json, ToJson};
use local_broadcast_consensus::experiments;
use local_broadcast_consensus::prelude::*;

fn parse_graph(name: &str) -> Option<Graph> {
    let lower = name.to_lowercase();
    let tail_number = |prefix: &str| -> Option<usize> { lower.strip_prefix(prefix)?.parse().ok() };
    match lower.as_str() {
        "fig1a" => return Some(generators::paper_fig1a()),
        "fig1b" => return Some(generators::paper_fig1b()),
        "q3" => return Some(generators::hypercube(3)),
        _ => {}
    }
    if let Some(n) = tail_number("circ") {
        return (n >= 5).then(|| generators::circulant(n, &[1, 2]));
    }
    if let Some(n) = tail_number("wheel") {
        return (n >= 4).then(|| generators::wheel(n));
    }
    if let Some(n) = tail_number("path") {
        return Some(generators::path_graph(n));
    }
    if let Some(n) = tail_number("c") {
        return (n >= 3).then(|| generators::cycle(n));
    }
    if let Some(n) = tail_number("k") {
        return Some(generators::complete(n));
    }
    None
}

fn parse_strategy(name: &str) -> Option<Strategy> {
    Some(match name {
        "honest" => Strategy::Honest,
        "silent" => Strategy::Silent,
        "tamper-all" => Strategy::TamperAll,
        "tamper-relays" => Strategy::TamperRelays,
        "equivocate" => Strategy::Equivocate,
        "random" => Strategy::Random { seed: 42 },
        "sleeper" => Strategy::SleeperTamper { honest_rounds: 3 },
        "straddle-tamper" => Strategy::StraddleTamper,
        "gst-equivocate" => Strategy::GstEquivocate,
        "crash-recover" => Strategy::CrashRecover {
            down_from: 2,
            down_for: 2,
        },
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lbc check <graph> <f> [t]\n  lbc run <alg1|alg2|alg3|p2p|async> <graph> <f> <faulty-node> <strategy>\n  lbc impossibility <graph> <f>\n  lbc experiments [E1..E8]\n  lbc campaign <spec.json> [--workers N] [--out DIR] [--strict] [--quiet] [--telemetry] [--list]\n               [--cell-timeout MS] [--resume]\n  lbc serve <spec.json> [--instances N] [--workers N] [--out DIR] [--strict] [--quiet] [--list]\n  lbc trace <spec.json> --cell <id> [--no-timeline]\n  lbc campaign diff [--cross-spec] <old.report.json> <new.report.json>\n  lbc search <spec.json> [--workers N] [--out DIR] [--resume REPORT] [--require-violation] [--quiet] [--list]\n  lbc graphs\n\nstrategies: honest silent tamper-all tamper-relays equivocate random sleeper straddle-tamper gst-equivocate crash-recover\ngraphs: c<N> k<N> circ<N> wheel<N> path<N> q3 fig1a fig1b\nregimes (spec files): sync | {{\"kind\": \"async\", ...}} | {{\"kind\": \"partial-sync\", \"gst\": G, \"hold\": [..], ...}}\n\ncampaign exit codes: 0 = clean run, 1 = consensus violations under --strict,\n  2 = infrastructure trouble (panicked/timed-out cells, or a usage error)"
    );
    ExitCode::from(2)
}

/// `lbc campaign diff [--cross-spec] <old.json> <new.json>`
///
/// Compares two canonical reports cell-by-cell — campaign reports by
/// scenario identity, search reports by cell coordinates — and prints every
/// difference. Exit code 1 when any scenario regresses from correct to
/// incorrect (or a search cell loses a previously-found violation); other
/// changes (rounds, added or removed scenarios, incorrect→correct) are
/// informational. `--cross-spec` matches scenarios by coordinates instead
/// of full grid identity, tolerates added grids, and reports removed cells
/// as warnings.
fn cmd_campaign_diff(args: &[String]) -> ExitCode {
    let mut options = DiffOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--cross-spec" => options.cross_spec = true,
            _ => paths.push(arg),
        }
    }
    let (Some(old_path), Some(new_path)) = (paths.first(), paths.get(1)) else {
        return usage();
    };
    let old = match fs::read_to_string(old_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {old_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let new = match fs::read_to_string(new_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {new_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match diff_report_texts_with(&old, &new, options) {
        Ok(diff) => {
            print!("{}", diff.render());
            if diff.has_regressions() {
                eprintln!("verdict regressions detected");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}

/// `lbc search <spec.json> [--workers N] [--out DIR] [--resume REPORT]
/// [--require-violation] [--quiet]`
///
/// Runs the per-cell worst-case adversary search of the spec's `search`
/// block (defaults apply when absent), writing `<out>/<name>.search.json`
/// (the canonical, resumable report) and — when violations were found —
/// `<out>/<name>.counterexamples.json`, a replayable campaign spec whose
/// sweeps are the minimized counterexamples. `--resume` restores per-cell
/// frontiers from a previous canonical search report and continues the
/// budgeted mutation schedule. With `--require-violation` the exit code is
/// non-zero when **no** cell violates — the mode CI smoke uses to assert a
/// known violation stays rediscoverable.
fn cmd_search(args: &[String]) -> ExitCode {
    let Some(spec_path) = args.first() else {
        return usage();
    };
    let mut workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut out_dir: Option<PathBuf> = None;
    let mut resume_path: Option<String> = None;
    let mut require_violation = false;
    let mut quiet = false;
    let mut list = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--workers" => {
                let Some(count) = rest.next().and_then(|w| w.parse::<usize>().ok()) else {
                    eprintln!("--workers requires a positive integer");
                    return ExitCode::from(2);
                };
                workers = count.max(1);
            }
            "--out" => {
                let Some(dir) = rest.next() else {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--resume" => {
                let Some(path) = rest.next() else {
                    eprintln!("--resume requires a canonical search report");
                    return ExitCode::from(2);
                };
                resume_path = Some(path.clone());
            }
            "--require-violation" => require_violation = true,
            "--quiet" => quiet = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown search flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let text = match fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CampaignSpec::from_json_text(&text) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if list {
        // Spec debugging: print the expanded cell table, run nothing.
        return match render_search_plan(&spec) {
            Ok(plan) => {
                print!("{plan}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{spec_path}: {err}");
                ExitCode::FAILURE
            }
        };
    }
    let prior = match &resume_path {
        None => None,
        Some(path) => match fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(json) => Some(json),
            Err(err) => {
                eprintln!("cannot load resume report {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
    };
    let started = Instant::now();
    let report = match run_search_resumed(&spec, prior.as_ref(), workers) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("."));
    if let Err(err) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let json_path = out_dir.join(format!("{}.search.json", report.name()));
    if let Err(err) = fs::write(&json_path, report.to_json().pretty() + "\n") {
        eprintln!("cannot write {}: {err}", json_path.display());
        return ExitCode::FAILURE;
    }
    let counterexamples = out_dir.join(format!("{}.counterexamples.json", report.name()));
    let counterexample_path = match report.counterexample_spec() {
        Some(replay) => Some((
            counterexamples.clone(),
            fs::write(&counterexamples, replay.to_json().pretty() + "\n"),
        )),
        None => {
            // A violation-free run must not leave a previous run's
            // counterexamples lying around as if they were still current.
            match fs::remove_file(&counterexamples) {
                Ok(()) => eprintln!(
                    "removed stale {} (this run found no violations)",
                    counterexamples.display()
                ),
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
                Err(err) => {
                    eprintln!("cannot remove stale {}: {err}", counterexamples.display());
                    return ExitCode::FAILURE;
                }
            }
            None
        }
    };
    if let Some((path, Err(err))) = &counterexample_path {
        eprintln!("cannot write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    if !quiet {
        print!("{}", report.render_summary());
        println!(
            "wall time {:.3}s ({} workers); wrote {}{}",
            elapsed.as_secs_f64(),
            workers,
            json_path.display(),
            counterexample_path
                .as_ref()
                .map_or_else(String::new, |(path, _)| format!(" and {}", path.display()))
        );
    }
    if require_violation && report.violations().is_empty() {
        eprintln!("--require-violation: no cell found a violation");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (Some(graph_name), Some(f)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(graph) = parse_graph(graph_name) else {
        eprintln!("unknown graph: {graph_name}");
        return ExitCode::from(2);
    };
    let Ok(f) = f.parse::<usize>() else {
        return usage();
    };
    let t: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    println!(
        "graph {graph_name}: n = {}, min degree = {}, vertex connectivity = {}",
        graph.node_count(),
        graph.min_degree(),
        connectivity::vertex_connectivity(&graph)
    );
    println!(
        "local broadcast   (f = {f}):        {}",
        conditions::local_broadcast_feasible(&graph, f)
    );
    println!(
        "efficient (2f-connected, f = {f}):  {}",
        conditions::efficient_algorithm_applicable(&graph, f)
    );
    println!(
        "point-to-point    (f = {f}):        {}",
        conditions::point_to_point_feasible(&graph, f)
    );
    if t <= f {
        println!(
            "hybrid (f = {f}, t = {t}):            {}",
            conditions::hybrid_feasible(&graph, f, t)
        );
    }
    println!(
        "max tolerable f: local broadcast = {}, point-to-point = {}",
        conditions::max_f_local_broadcast(&graph),
        conditions::max_f_point_to_point(&graph)
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let (Some(alg), Some(graph_name), Some(f), Some(faulty_node), Some(strategy_name)) = (
        args.first(),
        args.get(1),
        args.get(2),
        args.get(3),
        args.get(4),
    ) else {
        return usage();
    };
    let Some(graph) = parse_graph(graph_name) else {
        eprintln!("unknown graph: {graph_name}");
        return ExitCode::from(2);
    };
    let (Ok(f), Ok(faulty_index)) = (f.parse::<usize>(), faulty_node.parse::<usize>()) else {
        return usage();
    };
    let Some(strategy) = parse_strategy(strategy_name) else {
        eprintln!("unknown strategy: {strategy_name}");
        return ExitCode::from(2);
    };
    let n = graph.node_count();
    if faulty_index >= n {
        eprintln!("faulty node {faulty_index} out of range for n = {n}");
        return ExitCode::from(2);
    }
    // Alternating inputs make the instance non-trivial.
    let inputs =
        InputAssignment::from_bits(n.min(64), 0xAAAA_AAAA_AAAA_AAAA & ((1 << n.min(63)) - 1));
    let faulty = NodeSet::singleton(NodeId::new(faulty_index));
    let mut adversary = strategy.clone().into_adversary();
    let (outcome, trace) = match alg.as_str() {
        "alg1" => runner::run_algorithm1(&graph, f, &inputs, &faulty, &mut adversary),
        "alg2" => runner::run_algorithm2(&graph, f, &inputs, &faulty, &mut adversary),
        "alg3" => runner::run_algorithm3(&graph, f, f, &faulty, &inputs, &faulty, &mut adversary),
        "p2p" => runner::run_p2p_baseline(&graph, f, &inputs, &faulty, &mut adversary),
        "async" => {
            // A representative adversarial schedule; campaigns sweep the
            // full scheduler × delay grid.
            let regime = lbc_model::Regime::Asynchronous(lbc_model::AsyncRegime {
                scheduler: lbc_model::SchedulerKind::EdgeLag,
                delay: 3,
                seed: 42,
            });
            runner::run_async_flood(&graph, f, &inputs, &faulty, &regime, &mut adversary)
        }
        other => {
            eprintln!("unknown algorithm: {other}");
            return ExitCode::from(2);
        }
    };
    println!("graph = {graph_name}, f = {f}, faulty = {faulty}, strategy = {strategy_name}");
    println!("inputs  = {inputs}");
    println!(
        "rounds  = {}, transmissions = {}",
        trace.rounds(),
        trace.total_transmissions()
    );
    println!("{outcome}");
    if outcome.verdict().is_correct() {
        println!("consensus reached on {:?}", outcome.agreed_value());
        ExitCode::SUCCESS
    } else {
        println!("CONSENSUS VIOLATED");
        ExitCode::FAILURE
    }
}

fn cmd_impossibility(args: &[String]) -> ExitCode {
    let (Some(graph_name), Some(f)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(graph) = parse_graph(graph_name) else {
        eprintln!("unknown graph: {graph_name}");
        return ExitCode::from(2);
    };
    let Ok(f) = f.parse::<usize>() else {
        return usage();
    };
    let rounds = Algorithm1Node::round_count(graph.node_count(), f) + 4;
    let mut any = false;
    for (label, construction) in [
        ("degree (Figure 2)", degree_construction(&graph, f)),
        (
            "connectivity (Figure 3)",
            connectivity_construction(&graph, f),
        ),
    ] {
        match construction {
            None => println!("{label}: condition satisfied, no construction applies"),
            Some(c) => {
                any = true;
                println!("{label}: {}", c.description());
                let report = c.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
                for execution in &report.executions {
                    println!(
                        "  {}: faulty = {}, {}",
                        execution.label,
                        execution.faulty,
                        execution.verdict()
                    );
                }
                println!(
                    "  violation exhibited: {} ({:?})",
                    report.exhibits_violation(),
                    report.violated_executions()
                );
            }
        }
    }
    if !any {
        println!("graph satisfies both Theorem 4.1 conditions for f = {f}; consensus is possible");
    }
    ExitCode::SUCCESS
}

fn cmd_experiments(args: &[String]) -> ExitCode {
    let wanted = args.first().map(|s| s.to_uppercase());
    let all = [
        (
            "E1",
            experiments::e1_fig1a_cycle as fn() -> experiments::ExperimentResult,
        ),
        ("E2", experiments::e2_fig1b_f2),
        ("E3", experiments::e3_degree_lower_bound),
        ("E4", experiments::e4_connectivity_lower_bound),
        ("E5", experiments::e5_threshold_sweep),
        ("E6", experiments::e6_round_complexity),
        ("E7", experiments::e7_hybrid_tradeoff),
        ("E8", experiments::e8_reliable_receive),
    ];
    let mut ran = false;
    for (id, run) in all {
        if wanted.as_deref().is_none_or(|w| w == id) {
            println!("{}", run().render_table());
            println!();
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown experiment id; use E1..E8");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// `lbc campaign <spec.json> [--workers N] [--out DIR] [--strict] [--quiet]
/// [--cell-timeout MS] [--resume]`
///
/// Expands the spec, executes it on a worker pool, writes
/// `<out>/<name>.report.json` (the canonical, worker-count-independent
/// report) and `<out>/<name>.report.csv` (per-scenario rows including wall
/// times) — `--out` defaults to the current directory, so running a
/// committed example spec does not drop reports into the source tree —
/// and prints the rollup summary.
///
/// Execution is fault-tolerant: a panicking cell is quarantined as a
/// `failed` record, `--cell-timeout MS` (or the spec's `limits` block)
/// degrades over-budget cells to `timeout` records, and completed cells
/// are journaled to `<out>/<name>.checkpoint.json` so a killed run can be
/// continued with `--resume` (the resumed report is byte-identical to the
/// one-shot report; the journal is removed once the report is written).
///
/// Exit codes distinguish outcome classes: **0** clean, **1** consensus
/// violations under `--strict`, **2** infrastructure trouble (any
/// panicked or timed-out cell; infrastructure takes precedence over
/// `--strict`, and usage errors share this code).
fn cmd_campaign(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("diff") {
        return cmd_campaign_diff(&args[1..]);
    }
    let Some(spec_path) = args.first() else {
        return usage();
    };
    let mut workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut out_dir: Option<PathBuf> = None;
    let mut strict = false;
    let mut quiet = false;
    let mut telemetry = false;
    let mut list = false;
    let mut cell_timeout_ms: Option<u64> = None;
    let mut resume = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--workers" => {
                let Some(count) = rest.next().and_then(|w| w.parse::<usize>().ok()) else {
                    eprintln!("--workers requires a positive integer");
                    return ExitCode::from(2);
                };
                workers = count.max(1);
            }
            "--out" => {
                let Some(dir) = rest.next() else {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--cell-timeout" => {
                let Some(ms) = rest.next().and_then(|w| w.parse::<u64>().ok()) else {
                    eprintln!("--cell-timeout requires a budget in milliseconds");
                    return ExitCode::from(2);
                };
                cell_timeout_ms = Some(ms);
            }
            "--strict" => strict = true,
            "--quiet" => quiet = true,
            "--telemetry" => telemetry = true,
            "--resume" => resume = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown campaign flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let text = match fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CampaignSpec::from_json_text(&text) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (scenarios, notes) = match spec.expand_noted() {
        Ok(expansion) => expansion,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if list {
        // Spec debugging: print the expanded scenario table, run nothing.
        println!(
            "campaign '{}' (seed {}): {} scenarios",
            spec.name,
            spec.seed,
            scenarios.len()
        );
        for note in &notes {
            println!("note: {note}");
        }
        for scenario in &scenarios {
            println!(
                "  #{} {} n={} f={} {} [{}] {} faulty={} inputs={} feasible={}",
                scenario.index,
                scenario.graph,
                scenario.n,
                scenario.f,
                scenario.algorithm.name(),
                scenario.regime.label(),
                scenario.strategy_name,
                scenario.faulty,
                scenario.inputs,
                scenario.feasible
            );
        }
        return ExitCode::SUCCESS;
    }
    if !quiet {
        println!(
            "campaign '{}': {} scenarios on {workers} workers",
            spec.name,
            scenarios.len()
        );
        for note in &notes {
            println!("note: {note}");
        }
    }
    // The output directory must exist before the run: the checkpoint
    // journal lives there and is written while cells execute.
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("."));
    if let Err(err) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let mut options = ExecOptions::new(workers);
    options.telemetry = telemetry;
    options.progress = !quiet;
    options.cell_timeout_micros = cell_timeout_ms.map(|ms| ms.saturating_mul(1000));
    options.chaos = ChaosPolicy::from_env();
    let mut checkpoint =
        CheckpointConfig::new(out_dir.join(format!("{}.checkpoint.json", spec.name)));
    checkpoint.resume = resume;
    if resume && checkpoint.path.exists() && !quiet {
        println!(
            "resuming completed cells from {}",
            checkpoint.path.display()
        );
    }
    let checkpoint_path = checkpoint.path.clone();
    options.checkpoint = Some(checkpoint);
    let started = Instant::now();
    let report = match run_scenarios_resumable(&spec, &scenarios, notes, &options) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    let json_path = out_dir.join(format!("{}.report.json", report.name()));
    let csv_path = out_dir.join(format!("{}.report.csv", report.name()));
    if let Err(err) = fs::write(&json_path, report.to_json().pretty() + "\n") {
        eprintln!("cannot write {}: {err}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(err) = fs::write(&csv_path, report.to_csv()) {
        eprintln!("cannot write {}: {err}", csv_path.display());
        return ExitCode::FAILURE;
    }
    // The run is durably reported; the journal has served its purpose.
    match fs::remove_file(&checkpoint_path) {
        Ok(()) => {}
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
        Err(err) => eprintln!(
            "warning: cannot remove checkpoint {}: {err}",
            checkpoint_path.display()
        ),
    }
    if let Some(telemetry) = report.telemetry() {
        let telemetry_path = out_dir.join(format!("{}.telemetry.csv", report.name()));
        if let Err(err) = fs::write(&telemetry_path, telemetry.to_csv()) {
            eprintln!("cannot write {}: {err}", telemetry_path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!("telemetry: wrote {}", telemetry_path.display());
        }
    }
    if !quiet {
        println!("{}", report.render_summary());
        println!(
            "wall time {:.3}s ({} workers); wrote {} and {}",
            elapsed.as_secs_f64(),
            workers,
            json_path.display(),
            csv_path.display()
        );
    }
    // Infrastructure trouble (a panicked or timed-out cell) outranks
    // verdict checking: the report is incomplete evidence either way.
    let quarantined = report.quarantined();
    if !quarantined.is_empty() {
        for record in &quarantined {
            eprintln!(
                "QUARANTINED ({}): #{} {} {} f={} {} faulty={} inputs={}",
                record.status.label(),
                record.index,
                record.graph,
                record.algorithm.name(),
                record.f,
                record.strategy,
                record.faulty,
                record.inputs,
            );
        }
        return ExitCode::from(2);
    }
    if strict && !report.all_correct() {
        for record in report.incorrect() {
            eprintln!(
                "INCORRECT: #{} {} {} f={} {} faulty={} inputs={} ({})",
                record.index,
                record.graph,
                record.algorithm.name(),
                record.f,
                record.strategy,
                record.faulty,
                record.inputs,
                record.verdict
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let Some(spec_path) = args.first() else {
        return usage();
    };
    let mut workers = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut instances: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut strict = false;
    let mut quiet = false;
    let mut list = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--workers" => {
                let Some(count) = rest.next().and_then(|w| w.parse::<usize>().ok()) else {
                    eprintln!("--workers requires a positive integer");
                    return ExitCode::from(2);
                };
                workers = count.max(1);
            }
            "--instances" => {
                let Some(count) = rest.next().and_then(|w| w.parse::<usize>().ok()) else {
                    eprintln!("--instances requires a positive integer");
                    return ExitCode::from(2);
                };
                instances = Some(count);
            }
            "--out" => {
                let Some(dir) = rest.next() else {
                    eprintln!("--out requires a directory");
                    return ExitCode::from(2);
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--strict" => strict = true,
            "--quiet" => quiet = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown serve flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let text = match fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CampaignSpec::from_json_text(&text) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(serve) = &spec.serve else {
        eprintln!("{spec_path}: spec has no 'serve' block");
        return ExitCode::from(2);
    };
    if list {
        // Spec debugging: print the lane table, run nothing.
        println!(
            "serve '{}' (seed {}): {} lanes x {} instances",
            spec.name,
            spec.seed,
            serve.lanes.len(),
            instances.unwrap_or(serve.instances)
        );
        for (index, lane) in serve.lanes.iter().enumerate() {
            println!(
                "  lane {index} {} n={} f={} {} [{}] {} faulty={:?}",
                lane.family.label(lane.n),
                lane.n,
                lane.f,
                lane.algorithm.name(),
                lane.regime.label(),
                lane.strategy.name(),
                lane.faulty,
            );
        }
        return ExitCode::SUCCESS;
    }
    if !quiet {
        println!(
            "serve '{}': {} lanes x {} instances on {workers} workers",
            spec.name,
            serve.lanes.len(),
            instances.unwrap_or(serve.instances)
        );
    }
    let report = match run_serve_opts(&spec, workers, instances) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("."));
    if let Err(err) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let json_path = out_dir.join(format!("{}.serve.report.json", report.name()));
    let csv_path = out_dir.join(format!("{}.serve.report.csv", report.name()));
    if let Err(err) = fs::write(&json_path, report.to_json().pretty() + "\n") {
        eprintln!("cannot write {}: {err}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(err) = fs::write(&csv_path, report.to_csv()) {
        eprintln!("cannot write {}: {err}", csv_path.display());
        return ExitCode::FAILURE;
    }
    if !quiet {
        print!("{}", report.render_summary());
        println!(
            "wall time {:.3}s ({} workers); wrote {} and {}",
            report.total_wall_micros() as f64 / 1e6,
            workers,
            json_path.display(),
            csv_path.display()
        );
    }
    // The end-of-run consistency gate: channel growth is infrastructure
    // trouble (the chain leaked ledger slots across instances), which
    // outranks verdict checking under --strict.
    if !report.channels_bounded() {
        for lane in report.lanes() {
            if !lane.channels_bounded() {
                eprintln!(
                    "UNBOUNDED CHANNELS: lane {} {} live/tag={} allocated={} tags={}",
                    lane.index,
                    lane.graph,
                    lane.stats.max_live_per_tag,
                    lane.stats.max_allocated_channels,
                    lane.stats.live_tags,
                );
            }
        }
        return ExitCode::from(2);
    }
    if strict && !report.all_correct() {
        for lane in report.lanes() {
            for (k, record) in lane.instances.iter().enumerate() {
                if !record.verdict.is_correct() {
                    eprintln!(
                        "INCORRECT: lane {} instance {k} {} {} f={} {} ({})",
                        lane.index,
                        lane.graph,
                        lane.algorithm.name(),
                        lane.f,
                        lane.strategy,
                        record.verdict
                    );
                }
            }
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(spec_path) = args.first() else {
        return usage();
    };
    let mut cell: Option<usize> = None;
    let mut timeline = true;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--cell" => {
                let Some(id) = rest.next().and_then(|c| c.parse::<usize>().ok()) else {
                    eprintln!("--cell requires a scenario index");
                    return ExitCode::from(2);
                };
                cell = Some(id);
            }
            "--no-timeline" => timeline = false,
            other => {
                eprintln!("unknown trace flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(cell) = cell else {
        eprintln!("lbc trace requires --cell <id> (use `lbc campaign <spec> --list` for ids)");
        return ExitCode::from(2);
    };
    let text = match fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CampaignSpec::from_json_text(&text) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = match spec.expand() {
        Ok(scenarios) => scenarios,
        Err(err) => {
            eprintln!("{spec_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(scenario) = scenarios.get(cell) else {
        eprintln!(
            "cell {cell} is out of range: campaign '{}' expands to {} scenarios (0..={})",
            spec.name,
            scenarios.len(),
            scenarios.len().saturating_sub(1)
        );
        return ExitCode::FAILURE;
    };
    let replay = replay_scenario(scenario);
    print!("{}", replay.render_with(scenario, timeline));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("impossibility") => cmd_impossibility(&args[1..]),
        Some("experiments") => cmd_experiments(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("graphs") => {
            println!("c<N> k<N> circ<N> wheel<N> path<N> q3 fig1a fig1b");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
