//! # local-broadcast-consensus
//!
//! A production-quality Rust reproduction of **"Exact Byzantine Consensus on
//! Undirected Graphs under Local Broadcast Model"** (Khan, Naqvi, Vaidya —
//! PODC 2019 / arXiv:1903.11677).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`model`] — shared vocabulary types (node ids, binary values, paths,
//!   node sets, communication models, outcomes),
//! * [`graph`] — the undirected-graph substrate (generators, connectivity,
//!   Menger-style disjoint paths, cuts),
//! * [`sim`] — the deterministic synchronous round simulator,
//! * [`adversary`] — Byzantine strategy library,
//! * [`consensus`] — the paper's algorithms (1, 2, 3), the feasibility
//!   conditions, and the point-to-point baseline,
//! * [`lowerbound`] — the Figure 2/3 impossibility constructions,
//! * [`experiments`] — the harness regenerating every figure / claim,
//! * [`campaign`] — declarative scenario specs plus the deterministic
//!   parallel sweep executor (`lbc campaign <spec.json>`).
//!
//! ## Quickstart
//!
//! ```
//! use local_broadcast_consensus::prelude::*;
//!
//! // Figure 1(a): the 5-cycle tolerates one Byzantine fault under local
//! // broadcast (it could tolerate none under the classical model).
//! let graph = generators::paper_fig1a();
//! assert!(conditions::local_broadcast_feasible(&graph, 1));
//! assert!(!conditions::point_to_point_feasible(&graph, 1));
//!
//! let inputs = InputAssignment::from_bits(5, 0b01101);
//! let faulty = NodeSet::singleton(NodeId::new(3));
//! let mut adversary = Strategy::TamperRelays.into_adversary();
//! let (outcome, trace) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
//! assert!(outcome.verdict().is_correct());
//! assert_eq!(trace.rounds(), 30); // 6 candidate fault sets × 5 flooding rounds
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lbc_adversary as adversary;
pub use lbc_campaign as campaign;
pub use lbc_consensus as consensus;
pub use lbc_experiments as experiments;
pub use lbc_graph as graph;
pub use lbc_lowerbound as lowerbound;
pub use lbc_model as model;
pub use lbc_sim as sim;

/// Commonly used items, re-exported flat for examples and quick scripts.
pub mod prelude {
    pub use lbc_adversary::Strategy;
    pub use lbc_consensus::{conditions, runner, Algorithm1Node, Algorithm2Node, Algorithm3Node};
    pub use lbc_graph::{connectivity, generators, paths, Graph};
    pub use lbc_lowerbound::{connectivity_construction, degree_construction};
    pub use lbc_model::{
        CommModel, ConsensusOutcome, InputAssignment, NodeId, NodeSet, Path, Value,
    };
    pub use lbc_sim::{HonestAdversary, Network};
}
