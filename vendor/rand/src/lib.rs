//! Offline shim for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate vendors the *tiny* subset of the `rand` 0.8 API the workspace
//! actually uses: [`RngCore`], the [`Rng`] extension trait with `gen_bool` /
//! `gen_range`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The shim makes no attempt to be bit-compatible with upstream `rand`; it
//! only promises *determinism per seed*, which is all the workspace relies on
//! (reproducible random graphs, reproducible adversary coin flips).

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a half-open range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // workspace only needs uniform-enough, deterministic draws.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related random operations (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// A small, fast default generator (SplitMix64), used by the shimmed
/// `rand_chacha` crate and available directly for tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
