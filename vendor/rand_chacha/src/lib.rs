//! Offline shim for the `rand_chacha` crate.
//!
//! Provides a `ChaCha8Rng` type name implementing the shimmed
//! [`rand::RngCore`] / [`rand::SeedableRng`] traits. The underlying
//! generator is xoshiro256++ rather than ChaCha8 — the workspace only relies
//! on determinism per seed, never on ChaCha stream compatibility.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A deterministic, seedable generator (xoshiro256++ under the hood).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through SplitMix64, as upstream rand does, so that
        // nearby seeds produce unrelated states.
        let mut sm = rand::SplitMix64::new(seed);
        ChaCha8Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: usize = rng.gen_range(0..10);
        assert!(x < 10);
        let _ = rng.gen_bool(0.5);
    }
}
