//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the Criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with real
//! wall-clock measurement.
//!
//! Every benchmark writes one JSON record (median/mean/min/max nanoseconds
//! per iteration) under `$LBC_BENCH_OUT` (default `target/lbc-bench/`), which
//! the workspace's `BENCH_baseline.json` collector aggregates.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        let out_dir = std::env::var_os("LBC_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/lbc-bench"));
        Criterion { out_dir }
    }
}

impl Criterion {
    /// Ignores CLI arguments (accepted for API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.out_dir, "", id, 20, f);
        self
    }
}

/// A named benchmark identifier with a parameter, `"name/param"`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates the id `"{name}/{parameter}"`.
    #[must_use]
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.criterion.out_dir, &self.name, id, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &self.criterion.out_dir,
            &self.name,
            &id.full,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The measurement callback handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Nanoseconds per iteration for each collected sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, running it enough times per sample for stable timing.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup + calibration: one untimed run, then estimate cost.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (TARGET_SAMPLE_TIME.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Stats {
    median: f64,
    mean: f64,
    min: f64,
    max: f64,
}

fn stats(samples: &[f64]) -> Stats {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    Stats {
        median,
        mean: sorted.iter().sum::<f64>() / n as f64,
        min: sorted[0],
        max: sorted[n - 1],
    }
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn run_benchmark<F>(out_dir: &std::path::Path, group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{full_name:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let s = stats(&bencher.samples_ns);
    println!(
        "{full_name:<50} time: [{} {} {}]",
        format_time(s.min),
        format_time(s.median),
        format_time(s.max)
    );
    write_json(out_dir, group, id, &full_name, sample_size, s);
}

fn write_json(
    out_dir: &std::path::Path,
    group: &str,
    id: &str,
    full_name: &str,
    sample_size: usize,
    s: Stats,
) {
    if fs::create_dir_all(out_dir).is_err() {
        return;
    }
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
        escape(group),
        escape(id),
        s.median,
        s.mean,
        s.min,
        s.max,
        sample_size
    );
    let file = out_dir.join(format!("{}.json", sanitize(full_name)));
    let _ = fs::write(file, json);
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Declares a benchmark group function, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = stats(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: 3,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(2_500_000_000.0).ends_with(" s"));
    }

    #[test]
    fn sanitize_keeps_safe_chars() {
        assert_eq!(sanitize("a/b c-d_e"), "a_b_c-d_e");
    }
}
