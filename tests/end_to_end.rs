//! Workspace-level integration tests: the public facade, cross-crate flows,
//! and the headline claims of the paper exercised end to end.

use local_broadcast_consensus::prelude::*;
use local_broadcast_consensus::{experiments, lowerbound};

/// The paper's headline sufficiency claim, end to end through the facade:
/// graphs meeting the conditions reach consensus with a Byzantine fault.
#[test]
fn sufficiency_end_to_end_via_facade() {
    let graph = generators::paper_fig1a();
    assert!(conditions::local_broadcast_feasible(&graph, 1));
    let inputs = InputAssignment::from_bits(5, 0b10110);
    let faulty = NodeSet::singleton(NodeId::new(4));
    let mut adversary = Strategy::TamperAll.into_adversary();
    let (outcome, trace) = runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary);
    assert!(outcome.verdict().is_correct());
    assert_eq!(trace.rounds(), Algorithm1Node::round_count(5, 1));
}

/// The paper's headline necessity claim, end to end: a graph one short of the
/// connectivity condition yields a concrete agreement violation through the
/// Figure 3 construction.
#[test]
fn necessity_end_to_end_via_facade() {
    let graph = generators::cycle(6);
    assert!(!conditions::local_broadcast_feasible(&graph, 2));
    let construction = lowerbound::connectivity_construction(&graph, 2).expect("deficient");
    let rounds = Algorithm1Node::round_count(6, 2) + 4;
    let report = construction.demonstrate(|_id, input| Algorithm1Node::new(input), rounds);
    assert!(report.exhibits_violation());
}

/// The three models' requirement ordering on every graph family we generate:
/// local broadcast ≤ efficient (2f) ≤ ... and never worse than point-to-point.
#[test]
fn requirement_ordering_across_families() {
    let graphs = vec![
        generators::complete(6),
        generators::cycle(7),
        generators::circulant(8, &[1, 2]),
        generators::hypercube(3),
        generators::wheel(7),
        generators::harary(4, 9),
    ];
    for graph in graphs {
        let lb = conditions::max_f_local_broadcast(&graph);
        let p2p = conditions::max_f_point_to_point(&graph);
        let eff = conditions::max_f_efficient(&graph);
        assert!(lb >= p2p, "local broadcast must never be worse");
        assert!(
            lb >= eff,
            "the tight condition is weaker than 2f-connectivity"
        );
    }
}

/// Complete graphs: the paper's n ≥ 2f + 1 (local broadcast) versus the
/// classical n ≥ 3f + 1.
#[test]
fn complete_graph_thresholds() {
    for f in 1..=3usize {
        assert!(conditions::local_broadcast_feasible(
            &generators::complete(2 * f + 1),
            f
        ));
        assert!(!conditions::local_broadcast_feasible(
            &generators::complete(2 * f),
            f
        ));
        assert!(conditions::point_to_point_feasible(
            &generators::complete(3 * f + 1),
            f
        ));
        assert!(!conditions::point_to_point_feasible(
            &generators::complete(3 * f),
            f
        ));
    }
}

/// The experiment harness produces non-empty, well-formed tables for every
/// experiment id.
#[test]
fn experiment_harness_smoke() {
    let e5 = experiments::e5_threshold_sweep();
    assert_eq!(e5.id, "E5");
    assert!(!e5.rows.is_empty());
    assert!(e5.render_table().contains("local broadcast"));

    let e7 = experiments::e7_hybrid_tradeoff();
    assert!(e7.rows.iter().any(|row| row[0] == "2" && row[1] == "1"));
}

/// The hybrid model interpolates: with t = 0 the hybrid feasibility predicate
/// coincides with the local broadcast predicate; with t = f it coincides with
/// the point-to-point predicate, on a spread of graphs.
#[test]
fn hybrid_model_interpolates_between_the_two_models() {
    let graphs = vec![
        generators::complete(5),
        generators::complete(7),
        generators::cycle(6),
        generators::circulant(9, &[1, 2]),
        generators::wheel(7),
    ];
    for graph in &graphs {
        for f in 0..=2usize {
            assert_eq!(
                conditions::hybrid_feasible(graph, f, 0),
                conditions::local_broadcast_feasible(graph, f),
                "t = 0 must match local broadcast (n={}, f={f})",
                graph.node_count()
            );
            // For t = f, condition (i) gives 2f+1-connectivity and condition
            // (iii) forces every node to have ≥ 2f+1 neighbors; together with
            // n > 2f+1... the paper notes (iii) implies n ≥ 3f+1 on feasible
            // graphs. Verify agreement with the Dolev predicate on complete
            // graphs, where the two are exactly equivalent.
            if graph.min_degree() + 1 == graph.node_count() {
                assert_eq!(
                    conditions::hybrid_feasible(graph, f, f),
                    conditions::point_to_point_feasible(graph, f),
                    "t = f must match point-to-point on complete graphs (n={}, f={f})",
                    graph.node_count()
                );
            }
        }
    }
}

/// Running the same seed twice produces identical traces (determinism of the
/// whole stack: graph generation, simulation, adversary).
#[test]
fn executions_are_deterministic() {
    let graph = generators::paper_fig1a();
    let inputs = InputAssignment::from_bits(5, 0b00101);
    let faulty = NodeSet::singleton(NodeId::new(2));
    let run = || {
        let mut adversary = Strategy::Random { seed: 99 }.into_adversary();
        runner::run_algorithm1(&graph, 1, &inputs, &faulty, &mut adversary)
    };
    let (o1, t1) = run();
    let (o2, t2) = run();
    assert_eq!(o1, o2);
    assert_eq!(t1, t2);
}
